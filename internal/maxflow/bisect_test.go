package maxflow

import (
	"math"
	"math/rand"
	"testing"
)

// pipeNetwork: s -> a (rate R) -> t (demand D). Min time = D/R.
func TestBisectorSinglePipe(t *testing.T) {
	g := New(3)
	e1 := g.AddEdge(0, 1, 0)
	e2 := g.AddEdge(1, 2, 0)
	b := NewTimeBisector(g, 0, 2, 100)
	b.AddRateEdge(e1, 10)   // 10 bytes/s
	b.AddFixedEdge(e2, 100) // 100 bytes demand
	got, err := b.MinTime(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-4*10 {
		t.Errorf("min time %v, want 10", got)
	}
	thr, err := b.Throughput(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(thr-10) > 1e-3*10 {
		t.Errorf("throughput %v, want 10", thr)
	}
}

// Two GPUs with unequal demands share an upstream bottleneck:
// s -> hub (rate 10) -> g1 (demand 30), hub -> g2 (demand 70).
// All demand moves through the hub: min time = 100/10 = 10.
func TestBisectorSharedBottleneck(t *testing.T) {
	g := New(5)
	s, hub, g1, g2, sink := 0, 1, 2, 3, 4
	eHub := g.AddEdge(s, hub, 0)
	l1 := g.AddEdge(hub, g1, 0)
	l2 := g.AddEdge(hub, g2, 0)
	d1 := g.AddEdge(g1, sink, 0)
	d2 := g.AddEdge(g2, sink, 0)
	b := NewTimeBisector(g, s, sink, 100)
	b.AddRateEdge(eHub, 10)
	b.AddRateEdge(l1, 100)
	b.AddRateEdge(l2, 100)
	b.AddFixedEdge(d1, 30)
	b.AddFixedEdge(d2, 70)
	got, err := b.MinTime(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-3 {
		t.Errorf("min time %v, want 10", got)
	}
}

// Load imbalance: one GPU has a slow private link, so completion time is
// dominated by the straggler even though aggregate bandwidth is plentiful.
func TestBisectorStragglerDominates(t *testing.T) {
	g := New(4)
	s, g1, g2, sink := 0, 1, 2, 3
	f := g.AddEdge(s, g1, 0)
	sl := g.AddEdge(s, g2, 0)
	d1 := g.AddEdge(g1, sink, 0)
	d2 := g.AddEdge(g2, sink, 0)
	b := NewTimeBisector(g, s, sink, 200)
	b.AddRateEdge(f, 100) // fast link
	b.AddRateEdge(sl, 1)  // slow link
	b.AddFixedEdge(d1, 100)
	b.AddFixedEdge(d2, 100)
	got, err := b.MinTime(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 0.1 {
		t.Errorf("min time %v, want 100 (straggler-bound)", got)
	}
}

func TestBisectorInfeasible(t *testing.T) {
	// Demand on a GPU with no incoming path.
	g := New(3)
	d := g.AddEdge(1, 2, 0) // node 1 unreachable from 0
	b := NewTimeBisector(g, 0, 2, 50)
	b.AddFixedEdge(d, 50)
	if _, err := b.MinTime(1e-6); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestBisectorZeroDemand(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 0)
	b := NewTimeBisector(g, 0, 1, 0)
	got, err := b.MinTime(1e-6)
	if err != nil || got != 0 {
		t.Fatalf("got (%v, %v), want (0, nil)", got, err)
	}
}

func TestBisectorFeasibleLeavesFlow(t *testing.T) {
	g := New(3)
	e1 := g.AddEdge(0, 1, 0)
	e2 := g.AddEdge(1, 2, 0)
	b := NewTimeBisector(g, 0, 2, 100)
	b.AddRateEdge(e1, 10)
	b.AddFixedEdge(e2, 100)
	if !b.Feasible(20) {
		t.Fatal("t=20 should be feasible")
	}
	if f := g.Flow(e2); math.Abs(f-100) > 1e-6 {
		t.Errorf("flow on demand edge %v, want 100", f)
	}
	if b.Feasible(5) {
		t.Fatal("t=5 should be infeasible")
	}
}

// Property: MinTime is the threshold — slightly above feasible, slightly
// below infeasible — on random two-tier networks.
func TestBisectorThresholdProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		nStore := 1 + r.Intn(3)
		nGPU := 1 + r.Intn(3)
		g := New(2 + nStore + nGPU)
		s := 0
		sink := 1 + nStore + nGPU
		b := NewTimeBisector(g, s, sink, 0)
		for j := 0; j < nStore; j++ {
			e := g.AddEdge(s, 1+j, 0)
			b.AddRateEdge(e, float64(1+r.Intn(20)))
		}
		total := 0.0
		for k := 0; k < nGPU; k++ {
			gv := 1 + nStore + k
			for j := 0; j < nStore; j++ {
				if r.Intn(2) == 0 || j == k%nStore {
					e := g.AddEdge(1+j, gv, 0)
					b.AddRateEdge(e, float64(1+r.Intn(20)))
				}
			}
			d := float64(1 + r.Intn(100))
			e := g.AddEdge(gv, sink, 0)
			b.AddFixedEdge(e, d)
			total += d
		}
		b.Demand = total
		tm, err := b.MinTime(1e-5)
		if err != nil {
			continue // disconnected instance; fine
		}
		if !b.Feasible(tm * 1.01) {
			t.Fatalf("iter %d: t*1.01 infeasible (t=%v)", i, tm)
		}
		if tm > 1e-6 && b.Feasible(tm*0.98) {
			t.Fatalf("iter %d: t*0.98 feasible (t=%v)", i, tm)
		}
	}
}

func TestBisectorInvalidInputsPanic(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 0)
	b := NewTimeBisector(g, 0, 1, 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative rate", func() { b.AddRateEdge(e, -1) })
	mustPanic("nan fixed", func() { b.AddFixedEdge(e, math.NaN()) })
	// Regression: registering a residual companion (odd id) used to corrupt
	// residual invariants on the first apply(); it must panic up front.
	mustPanic("odd rate edge", func() { b.AddRateEdge(e^1, 1) })
	mustPanic("odd fixed edge", func() { b.AddFixedEdge(e^1, 1) })
	mustPanic("rate edge out of range", func() { b.AddRateEdge(EdgeID(42), 1) })
}

// Regression: Feasible(t<=0) used to return without touching the graph,
// leaving capacities and flow from the previous probe in place while
// reporting on the zero-demand case — subsequent Flow() reads were garbage.
func TestBisectorZeroHorizonClearsStaleState(t *testing.T) {
	g := New(3)
	e1 := g.AddEdge(0, 1, 0)
	e2 := g.AddEdge(1, 2, 0)
	b := NewTimeBisector(g, 0, 2, 100)
	b.AddRateEdge(e1, 10)
	b.AddFixedEdge(e2, 100)
	if !b.Feasible(20) {
		t.Fatal("t=20 should be feasible")
	}
	if f := g.Flow(e1); f < 99 {
		t.Fatalf("probe at t=20 should leave flow, got %v", f)
	}
	if b.Feasible(0) {
		t.Fatal("t=0 must be infeasible for positive demand")
	}
	if f := g.Flow(e1); f != 0 {
		t.Errorf("stale flow %v on rate edge after Feasible(0), want 0", f)
	}
	if f := g.Flow(e2); f != 0 {
		t.Errorf("stale flow %v on fixed edge after Feasible(0), want 0", f)
	}
	if c := g.Capacity(e1); c != 0 {
		t.Errorf("rate edge capacity %v at horizon 0, want 0", c)
	}
	if c := g.Capacity(e2); c != 100 {
		t.Errorf("fixed edge capacity %v at horizon 0, want 100", c)
	}

	// Zero demand at zero horizon is feasible, and equally clean.
	b0 := NewTimeBisector(g, 0, 2, 0)
	b0.AddRateEdge(e1, 10)
	b0.AddFixedEdge(e2, 0)
	if !b0.Feasible(0) {
		t.Fatal("zero demand must be feasible at t=0")
	}
	if f := g.Flow(e1); f != 0 {
		t.Errorf("flow %v after zero-demand probe, want 0", f)
	}
}
