package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file when -update is set. Golden files pin the exact rendered text of the
// cheap, simulation-free tables: a formatting regression in Cell.String or
// Table.String shows up as a readable diff instead of a silently reshaped
// report.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiments -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestMachinesGolden(t *testing.T) {
	checkGolden(t, "table1_machines", Machines().String())
}

func TestDatasetsGolden(t *testing.T) {
	checkGolden(t, "table2_datasets", Datasets().String())
}

func TestCostTableGolden(t *testing.T) {
	checkGolden(t, "cost_table", CostTable().String())
}

// TestCellFormatGolden pins every Cell.String formatting branch — OOM
// markers, free text, and the three numeric precision bands — through a
// synthetic table, so the branches stay covered even if the real tables
// stop exercising one of them.
func TestCellFormatGolden(t *testing.T) {
	tb := &Table{
		ID:      "synthetic",
		Title:   "cell formatting probes",
		Columns: []string{"big", "mid", "small", "neg", "status"},
		Rows: []Row{
			{Label: "numbers", Cells: []Cell{Num(12345.678), Num(42.4242), Num(3.14159), Num(-0.5), Txt("ok")}},
			{Label: "edge cases", Cells: []Cell{Num(1000), Num(10), Num(9.999), Num(-1234.5), OOMCell()}},
			{Label: "a-long-config-label", Cells: []Cell{Num(0), Num(0.01), Num(0.001), Num(-10), Txt("text")}},
		},
		Notes: []string{"synthetic table exercising every Cell.String branch"},
	}
	checkGolden(t, "cell_format", tb.String())
}
