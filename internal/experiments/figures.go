package experiments

import (
	"fmt"

	"moment/internal/baselines"
	"moment/internal/core"
	"moment/internal/gnn"
	"moment/internal/graph"
	"moment/internal/placement"
	"moment/internal/topology"
	"moment/internal/trainsim"
)

var classicLayouts = []topology.ClassicLayout{
	topology.LayoutA, topology.LayoutB, topology.LayoutC, topology.LayoutD,
}

func ds(name string) graph.Dataset {
	d, err := graph.DatasetByName(name)
	if err != nil {
		panic(err) // catalog names are compile-time constants here
	}
	return d
}

func wl(dataset string, model gnn.ModelKind) trainsim.Workload {
	return trainsim.Workload{Dataset: ds(dataset), Model: model}
}

// epochClassic simulates the default (Moment-runtime) epoch for a classic
// layout.
func epochClassic(m *topology.Machine, l topology.ClassicLayout, w trainsim.Workload) (*trainsim.Result, error) {
	p, err := topology.ClassicPlacement(m, l)
	if err != nil {
		return nil, err
	}
	return trainsim.SimulateEpoch(trainsim.Config{Machine: m, Placement: p, Workload: w})
}

// searchMoment runs the placement search and simulates the winner.
func searchMoment(m *topology.Machine, w trainsim.Workload) (*trainsim.Result, *topology.Placement, error) {
	plan, err := core.CoOptimize(core.Input{Machine: m, Workload: w})
	if err != nil {
		return nil, nil, err
	}
	return plan.Epoch, plan.Placement, nil
}

// Machines reproduces Table 1: the evaluated platforms.
func Machines() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Evaluated platforms (Table 1)",
		Columns: []string{"gpus", "ssds", "dram-gib", "nodes"},
	}
	for _, m := range []*topology.Machine{topology.MachineA(), topology.MachineB(), topology.MachineC()} {
		t.Rows = append(t.Rows, Row{Label: "machine " + m.Name, Cells: []Cell{
			Num(float64(m.NumGPUs)),
			Num(float64(m.NumSSDs)),
			Num(float64(m.DRAMPerSocket.Int64()) * float64(len(m.RootComplexes())) / (1 << 30)),
			Num(float64(m.NumNodes)),
		}})
	}
	return t
}

// Datasets reproduces Table 2: dataset statistics.
func Datasets() *Table {
	t := &Table{
		ID:      "table2",
		Title:   "Dataset statistics (Table 2)",
		Columns: []string{"vertices-M", "edges-B", "topo-gib", "feat-gib"},
	}
	for _, d := range graph.Catalog() {
		t.Rows = append(t.Rows, Row{Label: d.Name, Cells: []Cell{
			Num(float64(d.Vertices) / 1e6),
			Num(float64(d.Edges) / 1e9),
			Num(d.TopologyStorage.GiBf()),
			Num(d.FeatureStorage.GiBf()),
		}})
	}
	return t
}

// figure12 generates Fig 1 (machine A) or Fig 2 (machine B): epoch time of
// the four classic layouts, GraphSAGE on IGB.
func figure12(m *topology.Machine, id, paperRef string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Epoch time of classic hardware layouts on machine %s, GraphSAGE/IGB (%s)", m.Name, paperRef),
		Columns: []string{"epoch-s"},
	}
	w := wl("IG", gnn.KindSAGE)
	for _, l := range classicLayouts {
		r, err := epochClassic(m, l, w)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Label: l.String(), Cells: []Cell{Num(r.EpochTime.Sec())}})
	}
	return t, nil
}

// Figure1 reproduces Fig 1 (paper epoch times 15.9 / 26.7 / 14.9 / 24.1 s).
func Figure1() (*Table, error) { return figure12(topology.MachineA(), "fig1", "paper Fig 1") }

// Figure2 reproduces Fig 2 (paper epoch times 28.4 / 29.7 / 18.6 / 24.0 s).
func Figure2() (*Table, error) { return figure12(topology.MachineB(), "fig2", "paper Fig 2") }

// figure34 generates Fig 3 (A) / Fig 4 (B): M-Hyperion throughput under the
// four layouts on IGB and UK.
func figure34(m *topology.Machine, id, ref string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("M-Hyperion throughput (vertices/s) under classic layouts, machine %s (%s)", m.Name, ref),
		Columns: []string{"IG", "UK"},
	}
	for _, l := range classicLayouts {
		row := Row{Label: l.String()}
		for _, dname := range []string{"IG", "UK"} {
			p, err := topology.ClassicPlacement(m, l)
			if err != nil {
				return nil, err
			}
			r, err := baselines.MHyperion(m, p, wl(dname, gnn.KindSAGE))
			if err != nil {
				return nil, err
			}
			if r.OOM != "" {
				row.Cells = append(row.Cells, OOMCell())
			} else {
				row.Cells = append(row.Cells, Num(r.Throughput))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure3 reproduces Fig 3 (paper: layout (c) ≈ 1.86× over (b) on A).
func Figure3() (*Table, error) { return figure34(topology.MachineA(), "fig3", "paper Fig 3") }

// Figure4 reproduces Fig 4 (paper: layout (c) ≈ 1.96× over (b) on B).
func Figure4() (*Table, error) { return figure34(topology.MachineB(), "fig4", "paper Fig 4") }

// figure56 generates Fig 5 (M-Hyperion) / Fig 6 (M-GIDS): throughput when
// expanding 2 → 4 GPUs under the packed layout (d).
func figure56(id, ref string, gids bool) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Throughput (vertices/s) scaling 2→4 GPUs under layout (d) (%s)", ref),
		Columns: []string{"2gpu", "4gpu", "speedup"},
	}
	for _, mk := range []func() *topology.Machine{topology.MachineA, topology.MachineB} {
		vals := map[int]float64{}
		for _, n := range []int{2, 4} {
			m := mk().WithGPUs(n)
			p, err := topology.ClassicPlacement(m, topology.LayoutD)
			if err != nil {
				return nil, err
			}
			w := wl("IG", gnn.KindSAGE)
			var r *trainsim.Result
			if gids {
				r, err = baselines.MGIDS(m, p, w)
			} else {
				r, err = baselines.MHyperion(m, p, w)
			}
			if err != nil {
				return nil, err
			}
			if r.OOM != "" {
				return nil, fmt.Errorf("experiments: %s OOM on %s: %s", id, m.Name, r.OOM)
			}
			vals[n] = r.Throughput
		}
		t.Rows = append(t.Rows, Row{Label: "machine " + mk().Name, Cells: []Cell{
			Num(vals[2]), Num(vals[4]), Num(vals[4] / vals[2]),
		}})
	}
	t.Notes = append(t.Notes, "paper: little or negative scaling under the packed layout")
	return t, nil
}

// Figure5 reproduces Fig 5 (M-Hyperion GPU expansion).
func Figure5() (*Table, error) { return figure56("fig5", "paper Fig 5, M-Hyperion", false) }

// Figure6 reproduces Fig 6 (M-GIDS GPU expansion).
func Figure6() (*Table, error) { return figure56("fig6", "paper Fig 6, M-GIDS", true) }

// Figure7 reproduces Fig 7: Moment's optimized placement on machine B and
// its epoch time (paper: 13.2 s), alongside the published layout.
func Figure7() (*Table, error) {
	m := topology.MachineB()
	w := wl("IG", gnn.KindSAGE)
	searched, pl, err := searchMoment(m, w)
	if err != nil {
		return nil, err
	}
	pub, err := topology.MomentPlacementB(m)
	if err != nil {
		return nil, err
	}
	pubRes, err := trainsim.SimulateEpoch(trainsim.Config{Machine: m, Placement: pub, Workload: w})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig7",
		Title:   "Moment's placement on machine B, GraphSAGE/IGB (paper Fig 7: 13.2 s)",
		Columns: []string{"epoch-s"},
		Notes: []string{
			"searched layout: " + pl.String(),
			"published layout: " + pub.String(),
		},
	}
	t.Rows = append(t.Rows,
		Row{Label: "searched", Cells: []Cell{Num(searched.EpochTime.Sec())}},
		Row{Label: "published(fig7)", Cells: []Cell{Num(pubRes.EpochTime.Sec())}},
	)
	return t, nil
}

// Figure10 reproduces Fig 10: end-to-end throughput of Moment, M-GIDS and
// DistDGL on all datasets and both models (paper: Moment up to 6.51× over
// M-GIDS and 3.02× over DistDGL; M-GIDS OOMs on UK/CL, DistDGL on IG/UK/CL).
func Figure10() (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "End-to-end throughput (vertices/s), Moment vs M-GIDS vs DistDGL (paper Fig 10)",
		Columns: []string{"moment", "m-gids", "distdgl"},
	}
	mA := topology.MachineA()
	for _, model := range []gnn.ModelKind{gnn.KindSAGE, gnn.KindGAT} {
		for _, dname := range []string{"PA", "IG", "UK", "CL"} {
			w := wl(dname, model)
			label := fmt.Sprintf("%s/%s", dname, model)
			row := Row{Label: label}

			moment, _, err := searchMoment(mA, w)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, Num(moment.Throughput))

			pc, err := topology.ClassicPlacement(mA, topology.LayoutC)
			if err != nil {
				return nil, err
			}
			gids, err := baselines.MGIDS(mA, pc, w)
			if err != nil {
				return nil, err
			}
			if gids.OOM != "" {
				row.Cells = append(row.Cells, OOMCell())
			} else {
				row.Cells = append(row.Cells, Num(gids.Throughput))
			}

			dgl, err := baselines.DistDGL(topology.MachineC(), baselines.DefaultDistDGL(), w)
			if err != nil {
				return nil, err
			}
			if dgl.OOM != "" {
				row.Cells = append(row.Cells, OOMCell())
			} else {
				row.Cells = append(row.Cells, Num(dgl.Throughput))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// figure1112 generates Fig 11 (A) / Fig 12 (B): throughput of the four
// classic placements and Moment, for 2-4 GPUs and both models.
func figure1112(mk func() *topology.Machine, id, ref string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Throughput (vertices/s): classic layouts vs Moment (%s)", ref),
		Columns: []string{"(a)", "(b)", "(c)", "(d)", "moment"},
	}
	for _, model := range []gnn.ModelKind{gnn.KindSAGE, gnn.KindGAT} {
		for _, n := range []int{2, 3, 4} {
			m := mk().WithGPUs(n)
			w := trainsim.Workload{Dataset: ds("IG"), Model: model}
			row := Row{Label: fmt.Sprintf("%s/%dgpu", model, n)}
			for _, l := range classicLayouts {
				r, err := epochClassic(m, l, w)
				if err != nil {
					return nil, err
				}
				row.Cells = append(row.Cells, Num(r.Throughput))
			}
			moment, _, err := searchMoment(m, w)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, Num(moment.Throughput))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Figure11 reproduces Fig 11 (paper: Moment up to 1.54× on machine A).
func Figure11() (*Table, error) {
	return figure1112(topology.MachineA, "fig11", "paper Fig 11, machine A")
}

// Figure12 reproduces Fig 12 (paper: Moment up to 1.63× on machine B).
func Figure12() (*Table, error) {
	return figure1112(topology.MachineB, "fig12", "paper Fig 12, machine B")
}

// Figure13 reproduces Fig 13: predicted vs measured throughput across
// datasets and GPU counts (paper max error 8.61%).
func Figure13() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Automatic module prediction accuracy (paper Fig 13, max error 8.61%)",
		Columns: []string{"predicted-s", "measured-s", "error-%"},
	}
	for _, mk := range []func() *topology.Machine{topology.MachineA, topology.MachineB} {
		for _, dname := range []string{"PA", "IG", "UK", "CL"} {
			for _, n := range []int{2, 4} {
				m := mk().WithGPUs(n)
				p, err := topology.ClassicPlacement(m, topology.LayoutC)
				if err != nil {
					return nil, err
				}
				r, err := trainsim.SimulateEpoch(trainsim.Config{
					Machine: m, Placement: p, Workload: wl(dname, gnn.KindSAGE)})
				if err != nil {
					return nil, err
				}
				if r.OOM != "" {
					continue
				}
				errPct := 0.0
				if r.IOTime > 0 {
					errPct = (r.PredictedIO.Sec() - r.IOTime.Sec()) / r.IOTime.Sec() * 100
				}
				t.Rows = append(t.Rows, Row{
					Label: fmt.Sprintf("%s/%s/%dgpu", m.Name, dname, n),
					Cells: []Cell{Num(r.PredictedIO.Sec()), Num(r.IOTime.Sec()), Num(errPct)},
				})
			}
		}
	}
	return t, nil
}

// figure1415 generates Fig 14 (A) / Fig 15 (B): DDAK vs hash placement
// throughput under the four classic layouts.
func figure1415(mk func() *topology.Machine, id, ref string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("DDAK vs hash data placement, throughput (vertices/s) (%s)", ref),
		Columns: []string{"ddak", "hash", "gain-%"},
	}
	for _, l := range classicLayouts {
		m := mk()
		p, err := topology.ClassicPlacement(m, l)
		if err != nil {
			return nil, err
		}
		w := wl("IG", gnn.KindSAGE)
		dd, err := trainsim.SimulateEpoch(trainsim.Config{Machine: m, Placement: p, Workload: w})
		if err != nil {
			return nil, err
		}
		hh, err := trainsim.SimulateEpoch(trainsim.Config{Machine: m, Placement: p, Workload: w,
			Policy: trainsim.PolicyHash})
		if err != nil {
			return nil, err
		}
		gain := (dd.Throughput/hh.Throughput - 1) * 100
		t.Rows = append(t.Rows, Row{Label: l.String(), Cells: []Cell{
			Num(dd.Throughput), Num(hh.Throughput), Num(gain),
		}})
	}
	return t, nil
}

// Figure14 reproduces Fig 14 (paper: up to +30.6% on machine A).
func Figure14() (*Table, error) {
	return figure1415(topology.MachineA, "fig14", "paper Fig 14, machine A")
}

// Figure15 reproduces Fig 15 (paper: up to +34.0% on machine B).
func Figure15() (*Table, error) {
	return figure1415(topology.MachineB, "fig15", "paper Fig 15, machine B")
}

// Figure16 reproduces Fig 16: scalability from 1 to 4 GPUs for layouts (c),
// (d) and Moment on both machines (paper speedups on A: 1.21/1.92/2.26,
// on B: 1.21/1.57/2.21).
func Figure16() (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Scalability 1→4 GPUs, throughput (vertices/s) (paper Fig 16)",
		Columns: []string{"1gpu", "2gpu", "3gpu", "4gpu", "speedup"},
	}
	w4 := wl("IG", gnn.KindSAGE)
	for _, mk := range []func() *topology.Machine{topology.MachineA, topology.MachineB} {
		for _, variant := range []string{"(c)", "(d)", "moment"} {
			row := Row{Label: "machine " + mk().Name + " " + variant}
			var first, last float64
			for _, n := range []int{1, 2, 3, 4} {
				m := mk().WithGPUs(n)
				var r *trainsim.Result
				var err error
				switch variant {
				case "moment":
					r, _, err = searchMoment(m, w4)
				case "(c)":
					r, err = epochClassic(m, topology.LayoutC, w4)
				default:
					r, err = epochClassic(m, topology.LayoutD, w4)
				}
				if err != nil {
					return nil, err
				}
				row.Cells = append(row.Cells, Num(r.Throughput))
				if n == 1 {
					first = r.Throughput
				}
				last = r.Throughput
			}
			row.Cells = append(row.Cells, Num(last/first))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Figure17 reproduces Fig 17: cross-QPI traffic of hash vs DDAK placement
// under the four layouts on machine A (paper: DDAK cuts traffic by
// 14.2/8.7/18.1/9.5%).
func Figure17() (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   "Cross-QPI traffic per epoch (GiB), hash vs DDAK, machine A (paper Fig 17)",
		Columns: []string{"hash", "ddak", "reduction-%"},
	}
	m := topology.MachineA()
	for _, l := range classicLayouts {
		p, err := topology.ClassicPlacement(m, l)
		if err != nil {
			return nil, err
		}
		w := wl("IG", gnn.KindSAGE)
		dd, err := trainsim.SimulateEpoch(trainsim.Config{Machine: m, Placement: p, Workload: w})
		if err != nil {
			return nil, err
		}
		hh, err := trainsim.SimulateEpoch(trainsim.Config{Machine: m, Placement: p, Workload: w,
			Policy: trainsim.PolicyHash})
		if err != nil {
			return nil, err
		}
		red := 0.0
		if hh.QPIBytes > 0 {
			red = (1 - dd.QPIBytes/hh.QPIBytes) * 100
		}
		t.Rows = append(t.Rows, Row{Label: l.String(), Cells: []Cell{
			Num(hh.QPIBytes / (1 << 30)), Num(dd.QPIBytes / (1 << 30)), Num(red),
		}})
	}
	return t, nil
}

// Figure18 reproduces Fig 18: throughput with and without NVLink bridges
// under layout (c) (paper: +11.7% on A, +6.8% on B).
func Figure18() (*Table, error) {
	t := &Table{
		ID:      "fig18",
		Title:   "NVLink support under layout (c), throughput (vertices/s) (paper Fig 18)",
		Columns: []string{"no-nvlink", "nvlink", "gain-%"},
	}
	for _, mk := range []func() *topology.Machine{topology.MachineA, topology.MachineB} {
		base := mk()
		w := wl("IG", gnn.KindSAGE)
		r0, err := epochClassic(base, topology.LayoutC, w)
		if err != nil {
			return nil, err
		}
		nv := base.WithNVLink(topology.NVLinkBridgeBW,
			topology.NVLinkPair{A: 0, B: 1}, topology.NVLinkPair{A: 2, B: 3})
		p, err := topology.ClassicPlacement(nv, topology.LayoutC)
		if err != nil {
			return nil, err
		}
		r1, err := trainsim.SimulateEpoch(trainsim.Config{
			Machine: nv, Placement: p, Workload: w, Cache: trainsim.CachePaired})
		if err != nil {
			return nil, err
		}
		gain := (r1.Throughput/r0.Throughput - 1) * 100
		t.Rows = append(t.Rows, Row{Label: "machine " + base.Name, Cells: []Cell{
			Num(r0.Throughput), Num(r1.Throughput), Num(gain),
		}})
	}
	return t, nil
}

// AblationSymmetry measures the placement-search candidate count and
// optimum with and without isomorphic reduction (DESIGN.md ablation).
func AblationSymmetry() (*Table, error) {
	t := &Table{
		ID:      "ablation-symmetry",
		Title:   "Placement search with/without isomorphic symmetry reduction",
		Columns: []string{"candidates", "epoch-io-s"},
	}
	for _, mk := range []func() *topology.Machine{topology.MachineA, topology.MachineB} {
		m := mk()
		cfg := trainsim.Config{Machine: m, Workload: wl("IG", gnn.KindSAGE)}
		cands, err := placement.Enumerate(m)
		if err != nil {
			return nil, err
		}
		cfg.Placement = cands[0]
		dem, _, err := trainsim.PlanDemand(cfg)
		if err != nil {
			return nil, err
		}
		for _, skip := range []bool{false, true} {
			res, err := placement.Search(m, dem, placement.Options{SkipDedupe: skip})
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("machine %s reduced", m.Name)
			if skip {
				label = fmt.Sprintf("machine %s full", m.Name)
			}
			t.Rows = append(t.Rows, Row{Label: label, Cells: []Cell{
				Num(float64(res.Evaluated)), Num(res.Time.Sec()),
			}})
		}
	}
	return t, nil
}

// AblationPooling measures DDAK planning decisions and GPU-tier hit rate
// across pooling factors n ∈ {1, 10, 100, 1000} (§3.3 fixes n=100).
func AblationPooling() (*Table, error) {
	t := &Table{
		ID:      "ablation-pooling",
		Title:   "DDAK pooling factor n: planning decisions vs placement quality",
		Columns: []string{"pools", "epoch-s", "hit-gpu-%"},
	}
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		return nil, err
	}
	for _, n := range []int{1, 10, 100, 1000} {
		r, err := trainsim.SimulateEpoch(trainsim.Config{
			Machine: m, Placement: p, Workload: wl("IG", gnn.KindSAGE), PoolN: n})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("n=%d", n), Cells: []Cell{
			Num(float64(r.BinAssign.Pools)), Num(r.EpochTime.Sec()), Num(r.HitGPU * 100),
		}})
	}
	return t, nil
}
