package experiments

import (
	"fmt"

	"moment/internal/gnn"
	"moment/internal/topology"
	"moment/internal/trainsim"
)

// BenchRecord is one machine-readable benchmark data point: a (machine,
// dataset, layout, policy) configuration with its simulated per-stage
// timings. Records serialize as JSON suitable for committing as
// BENCH_*.json and for regression diffing across PRs.
type BenchRecord struct {
	Machine string `json:"machine"`
	Dataset string `json:"dataset"`
	Model   string `json:"model"`
	Layout  string `json:"layout"` // a/b/c/d or "moment"
	Policy  string `json:"policy"` // ddak or hash

	EpochSec       float64 `json:"epoch_sec"`
	IOSec          float64 `json:"io_sec"`
	PredictedIOSec float64 `json:"predicted_io_sec"`
	ComputeSec     float64 `json:"compute_sec"`
	SampleSec      float64 `json:"sample_sec"`

	HitGPU        float64 `json:"hit_gpu"`
	HitCPU        float64 `json:"hit_cpu"`
	QPIGiB        float64 `json:"qpi_gib"`
	ThroughputVPS float64 `json:"throughput_vps"`

	// Serving-path accounting, populated only by the momentd load-test row
	// (layout "serve"). EpochSec stays the canonical problem's *simulated*
	// epoch — a deterministic planner output the compare gate can hold
	// steady — while the latency quantiles are informational wall-clock
	// measurements that are never regression-gated.
	ServeTenants   int     `json:"serve_tenants,omitempty"`
	ServeRequests  int     `json:"serve_requests,omitempty"`
	ServeCoalesced int     `json:"serve_coalesced,omitempty"`
	ServeCacheHits int     `json:"serve_cache_hits,omitempty"`
	ServeShed      int     `json:"serve_shed,omitempty"`
	ServeP99MS     float64 `json:"serve_p99_ms,omitempty"`
	ServeHitP99MS  float64 `json:"serve_hit_p99_ms,omitempty"`

	// Planner-harness accounting, populated only by the fleet placement
	// sweep row (layout "sweep"). As with the serve row, EpochSec stays a
	// deterministic simulated quantity (the fleet-mean best epoch time) so
	// the compare gate can hold it steady; the wall-clock pair records the
	// measured baseline (per-node cold serial search) against the optimized
	// harness (pooled streaming search over a shared score cache) and is
	// informational, never regression-gated.
	SweepNodes       int     `json:"sweep_nodes,omitempty"`
	SweepCacheHits   int     `json:"sweep_cache_hits,omitempty"`
	SweepBaselineMS  float64 `json:"sweep_baseline_ms,omitempty"`
	SweepOptimizedMS float64 `json:"sweep_optimized_ms,omitempty"`

	// Long-horizon simulation accounting, populated only by the multi-epoch
	// sweep row (layout "longsim"). EpochSec is the deterministic mean
	// simulated epoch over the horizon; the wall-clock pair compares the
	// naive re-simulate-every-epoch baseline against the fault-signature
	// delta cache and is informational.
	SimEpochs      int     `json:"sim_epochs,omitempty"`
	SimResims      int     `json:"sim_resims,omitempty"`
	SimCacheHits   int     `json:"sim_cache_hits,omitempty"`
	SimBaselineMS  float64 `json:"sim_baseline_ms,omitempty"`
	SimOptimizedMS float64 `json:"sim_optimized_ms,omitempty"`

	// Adaptive drift-loop accounting, populated only by the traffic-drift
	// row (layout "drift"). EpochSec is the adaptive run's deterministic
	// mean simulated epoch over the drifting horizon — the compare gate's
	// quantity — with the from-scratch oracle's mean and both sides'
	// migration bills recorded for the differential.
	DriftEpochs         int     `json:"drift_epochs,omitempty"`
	DriftEvents         int     `json:"drift_events,omitempty"`
	DriftTrips          int     `json:"drift_trips,omitempty"`
	DriftReplans        int     `json:"drift_replans,omitempty"`
	DriftMovedGiB       float64 `json:"drift_moved_gib,omitempty"`
	DriftOracleGiB      float64 `json:"drift_oracle_moved_gib,omitempty"`
	DriftOracleEpochSec float64 `json:"drift_oracle_epoch_sec,omitempty"`

	// Multi-node cluster accounting, populated only by the flow-planned
	// cluster row (layout "cluster"). EpochSec is the flow planner's
	// deterministic epoch on the reference configuration — the compare
	// gate's quantity — with the analytical composition's epoch and the
	// DistDGL baseline's epoch recorded alongside for the differential.
	ClusterNodes       int     `json:"cluster_nodes,omitempty"`
	ClusterNICGbps     float64 `json:"cluster_nic_gbps,omitempty"`
	ClusterReplication float64 `json:"cluster_replication,omitempty"`
	ClusterRemoteGiB   float64 `json:"cluster_remote_gib,omitempty"`
	ClusterNICSec      float64 `json:"cluster_nic_sec,omitempty"`
	ClusterFlowSec     float64 `json:"cluster_flow_sec,omitempty"`
	ClusterAnalyticSec float64 `json:"cluster_analytic_sec,omitempty"`
	ClusterDistDGLSec  float64 `json:"cluster_distdgl_sec,omitempty"`

	// Observability hot-path cost, populated only by the obs row (layout
	// "obs"): allocations per flight-recorder Record / explain Add call,
	// measured with testing.AllocsPerRun. The disabled paths must be
	// exactly zero — that is what makes always-on instrumentation free for
	// callers that never enable it. Pointers so an explicit 0 serializes.
	ObsDisabledEventAllocs   *int `json:"obs_disabled_event_allocs,omitempty"`
	ObsDisabledExplainAllocs *int `json:"obs_disabled_explain_allocs,omitempty"`
	ObsEnabledEventAllocs    *int `json:"obs_enabled_event_allocs,omitempty"`
}

func record(machine, dataset, layout string, model gnn.ModelKind, r *trainsim.Result) BenchRecord {
	return BenchRecord{
		Machine:        machine,
		Dataset:        dataset,
		Model:          model.String(),
		Layout:         layout,
		Policy:         trainsim.PolicyDDAK.String(),
		EpochSec:       r.EpochTime.Sec(),
		IOSec:          r.IOTime.Sec(),
		PredictedIOSec: r.PredictedIO.Sec(),
		ComputeSec:     r.ComputeTime.Sec(),
		SampleSec:      r.SampleTime.Sec(),
		HitGPU:         r.HitGPU,
		HitCPU:         r.HitCPU,
		QPIGiB:         r.QPIBytes / (1 << 30),
		ThroughputVPS:  r.Throughput,
	}
}

// BenchRecords simulates the core per-experiment grid — machines A and B on
// IG with each classic layout plus the Moment-searched placement — and
// returns one record per configuration.
func BenchRecords() ([]BenchRecord, error) {
	const dataset = "IG"
	w := wl(dataset, gnn.KindSAGE)
	var out []BenchRecord
	for _, m := range []*topology.Machine{topology.MachineA(), topology.MachineB()} {
		for _, l := range classicLayouts {
			r, err := epochClassic(m, l, w)
			if err != nil {
				return nil, fmt.Errorf("bench %s layout %s: %w", m.Name, l, err)
			}
			if r.OOM != "" {
				continue
			}
			out = append(out, record(m.Name, dataset, l.String(), gnn.KindSAGE, r))
		}
		r, _, err := searchMoment(m, w)
		if err != nil {
			return nil, fmt.Errorf("bench %s moment: %w", m.Name, err)
		}
		out = append(out, record(m.Name, dataset, "moment", gnn.KindSAGE, r))
	}
	return out, nil
}
