package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Bench-regression gate: CompareBench diffs two BENCH_*.json record sets —
// a committed baseline from an earlier PR and a freshly generated set — on
// simulated epoch time, per experiment. The momentbench -compare flag wires
// it into CI: any configuration whose epoch time regressed beyond the
// threshold fails the run, so planner/solver changes cannot silently slow a
// benchmarked configuration.

// CompareStatus classifies one configuration's delta.
type CompareStatus string

const (
	StatusOK          CompareStatus = "ok"
	StatusImprovement CompareStatus = "improvement"
	StatusRegression  CompareStatus = "regression"
	StatusMissing     CompareStatus = "missing" // in baseline, absent now
	StatusNew         CompareStatus = "new"     // absent in baseline
)

// CompareRow is one configuration's before/after epoch time.
type CompareRow struct {
	Key      string // machine/dataset/model/layout/policy
	Old, New float64
	Delta    float64 // (New-Old)/Old; 0 for missing/new rows
	Status   CompareStatus
}

// CompareReport is the full diff plus the threshold it was judged at.
type CompareReport struct {
	Rows      []CompareRow
	Threshold float64
}

// benchKey identifies one experiment configuration across record sets.
func benchKey(r BenchRecord) string {
	return fmt.Sprintf("%s/%s/%s/%s/%s", r.Machine, r.Dataset, r.Model, r.Layout, r.Policy)
}

// CompareBench diffs newRecs against a baseline on epoch_sec. threshold is
// the relative slowdown that counts as a regression (and speedup that
// counts as an improvement); <=0 defaults to 0.10. Rows come back sorted by
// key, so reports are deterministic.
func CompareBench(baseline, newRecs []BenchRecord, threshold float64) *CompareReport {
	if threshold <= 0 {
		threshold = 0.10
	}
	oldBy := make(map[string]BenchRecord, len(baseline))
	for _, r := range baseline {
		oldBy[benchKey(r)] = r
	}
	newBy := make(map[string]BenchRecord, len(newRecs))
	for _, r := range newRecs {
		newBy[benchKey(r)] = r
	}
	keys := make([]string, 0, len(oldBy)+len(newBy))
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, dup := oldBy[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	rep := &CompareReport{Threshold: threshold}
	for _, k := range keys {
		o, hasOld := oldBy[k]
		n, hasNew := newBy[k]
		row := CompareRow{Key: k}
		switch {
		case !hasNew:
			row.Old, row.Status = o.EpochSec, StatusMissing
		case !hasOld:
			row.New, row.Status = n.EpochSec, StatusNew
		default:
			row.Old, row.New = o.EpochSec, n.EpochSec
			if o.EpochSec > 0 {
				row.Delta = (n.EpochSec - o.EpochSec) / o.EpochSec
			} else if n.EpochSec > 0 {
				row.Delta = math.Inf(1)
			}
			switch {
			case row.Delta >= threshold:
				row.Status = StatusRegression
			case row.Delta <= -threshold:
				row.Status = StatusImprovement
			default:
				row.Status = StatusOK
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Regressions returns the rows that breach the threshold.
func (r *CompareReport) Regressions() []CompareRow {
	var out []CompareRow
	for _, row := range r.Rows {
		if row.Status == StatusRegression {
			out = append(out, row)
		}
	}
	return out
}

// Err returns nil when no configuration regressed, and an error naming the
// offenders otherwise — the CI gate.
func (r *CompareReport) Err() error {
	regs := r.Regressions()
	if len(regs) == 0 {
		return nil
	}
	names := make([]string, len(regs))
	for i, row := range regs {
		names[i] = fmt.Sprintf("%s (+%.1f%%)", row.Key, row.Delta*100)
	}
	return fmt.Errorf("experiments: %d epoch-time regression(s) beyond %.0f%%: %s",
		len(regs), r.Threshold*100, strings.Join(names, ", "))
}

// String renders the diff as an aligned table, missing/new rows last.
func (r *CompareReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench compare (epoch_sec, threshold %.0f%%)\n", r.Threshold*100)
	keyW := len("configuration")
	for _, row := range r.Rows {
		if len(row.Key) > keyW {
			keyW = len(row.Key)
		}
	}
	fmt.Fprintf(&b, "%-*s  %10s  %10s  %8s  %s\n", keyW, "configuration", "old", "new", "delta", "status")
	line := func(row CompareRow) {
		old, now, delta := "-", "-", "-"
		if row.Status != StatusNew {
			old = fmt.Sprintf("%.3f", row.Old)
		}
		if row.Status != StatusMissing {
			now = fmt.Sprintf("%.3f", row.New)
		}
		if row.Status != StatusNew && row.Status != StatusMissing {
			delta = fmt.Sprintf("%+.1f%%", row.Delta*100)
		}
		fmt.Fprintf(&b, "%-*s  %10s  %10s  %8s  %s\n", keyW, row.Key, old, now, delta, row.Status)
	}
	for _, row := range r.Rows {
		if row.Status != StatusMissing && row.Status != StatusNew {
			line(row)
		}
	}
	for _, row := range r.Rows {
		if row.Status == StatusMissing || row.Status == StatusNew {
			line(row)
		}
	}
	return b.String()
}

// ReadBenchRecords loads a committed BENCH_*.json record set.
func ReadBenchRecords(path string) ([]BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("experiments: parse %s: %w", path, err)
	}
	return recs, nil
}
