package experiments

import (
	"fmt"
	"math"
	"time"

	"moment/internal/faults"
	"moment/internal/flownet"
	"moment/internal/gnn"
	"moment/internal/placement"
	"moment/internal/scorecache"
	"moment/internal/topology"
	"moment/internal/trainsim"
)

// This file benchmarks the two long-horizon harness paths rather than the
// simulated system itself: planning a whole fleet of nodes (the placement
// sweep) and simulating thousands of training epochs against one fault
// schedule (the long-horizon sweep). Each produces one BenchRecord whose
// epoch_sec is a deterministic simulated quantity — so the -compare gate
// can hold it steady across PRs — while the measured wall-clock of the
// naive baseline and the optimized harness ride along as informational
// fields.

// FleetSweepRecord plans a fleet of nodes twice — every node searched cold
// and serially (the baseline), then the whole fleet through one shared
// score cache with the pooled streaming pipeline — and records both
// wall-clocks. The fleet alternates machines A and B, so from the third
// node on every search is a repeat configuration and the shared cache
// serves it wholesale; the two passes must agree on every node's best
// placement time, which is also the check that the harness speedup does
// not change planner output.
func FleetSweepRecord(nodes int) (BenchRecord, error) {
	if nodes < 2 {
		nodes = 2
	}
	machines := []*topology.Machine{topology.MachineA(), topology.MachineB()}
	w := wl("IG", gnn.KindSAGE)
	fleet := make([]*topology.Machine, nodes)
	for i := range fleet {
		fleet[i] = machines[i%len(machines)]
	}

	// Demand derivation (stats, sampling, flow prediction) is identical
	// work in both passes and not what this row measures; derive each
	// machine type's demand once, outside the timed regions.
	demands := map[string]*flownet.Demand{}
	for _, m := range machines {
		dem, err := fleetDemand(m, w)
		if err != nil {
			return BenchRecord{}, err
		}
		demands[m.Name] = dem
	}

	// Baseline: per-node cold serial search, no memoization anywhere.
	baseTimes := make([]float64, nodes)
	t0 := time.Now()
	for i, m := range fleet {
		res, err := placement.Search(m, demands[m.Name], placement.Options{Serial: true})
		if err != nil {
			return BenchRecord{}, fmt.Errorf("experiments: fleet baseline node %d: %w", i, err)
		}
		baseTimes[i] = res.Time.Sec()
	}
	baselineMS := float64(time.Since(t0)) / float64(time.Millisecond)

	// Optimized: the same fleet through one shared score cache and the
	// pooled streaming pipeline.
	cache := scorecache.NewScores(1 << 16)
	hits := 0
	mean := 0.0
	t1 := time.Now()
	for i, m := range fleet {
		res, err := placement.Search(m, demands[m.Name], placement.Options{Cache: cache})
		if err != nil {
			return BenchRecord{}, fmt.Errorf("experiments: fleet sweep node %d: %w", i, err)
		}
		hits += res.CacheHits
		mean += res.Time.Sec()
		if math.Abs(res.Time.Sec()-baseTimes[i]) > 1e-12 {
			return BenchRecord{}, fmt.Errorf(
				"experiments: fleet node %d: cached search %v != cold serial %v",
				i, res.Time.Sec(), baseTimes[i])
		}
	}
	optimizedMS := float64(time.Since(t1)) / float64(time.Millisecond)
	mean /= float64(nodes)

	return BenchRecord{
		Machine:          "A+B",
		Dataset:          "IG",
		Model:            gnn.KindSAGE.String(),
		Layout:           "sweep",
		Policy:           "scorecache",
		EpochSec:         mean,
		SweepNodes:       nodes,
		SweepCacheHits:   hits,
		SweepBaselineMS:  baselineMS,
		SweepOptimizedMS: optimizedMS,
	}, nil
}

// fleetDemand derives a node's planning demand the same way the trainer
// does, from an arbitrary feasible placement (the demand does not depend on
// which one).
func fleetDemand(m *topology.Machine, w trainsim.Workload) (*flownet.Demand, error) {
	cands, err := placement.Enumerate(m)
	if err != nil || len(cands) == 0 {
		return nil, fmt.Errorf("experiments: no candidates on %s: %v", m.Name, err)
	}
	dem, _, err := trainsim.PlanDemand(trainsim.Config{Machine: m, Placement: cands[0], Workload: w})
	if err != nil {
		return nil, err
	}
	return dem, nil
}

// LongSimRecord simulates a long fault-injected training run twice — once
// re-simulating every epoch in full (the baseline) and once through the
// fault-signature delta cache — and records both wall-clocks. The fault
// schedule is confined to the first few epochs (a throttle, an error
// burst, a GPU straggler, and a device fail-stop), so almost the whole
// horizon is quiet and cacheable; the two runs must agree on the total
// simulated time, which is the check that the cache never changes results.
func LongSimRecord(epochs int) (BenchRecord, error) {
	if epochs < 10 {
		epochs = 10
	}
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		return BenchRecord{}, err
	}
	cfg := trainsim.Config{Machine: m, Placement: p, Workload: wl("IG", gnn.KindSAGE)}
	nominal, err := trainsim.SimulateEpoch(cfg)
	if err != nil {
		return BenchRecord{}, err
	}
	ep := nominal.EpochTime.Sec()
	cfg.Faults = &faults.Schedule{Seed: 11, Events: []faults.Event{
		faults.ThrottleSSD(1, 1.3*ep, 0.5, ep),
		faults.Burst(2, 3.4*ep, 0.3, 0.5*ep),
		faults.Straggle(0, 5.2*ep, 0.6, 0.4*ep),
		faults.Kill(3, 7.5*ep),
	}}

	t0 := time.Now()
	base, err := trainsim.SimulateEpochs(cfg, trainsim.SweepOptions{Epochs: epochs, NoDeltaCache: true})
	if err != nil {
		return BenchRecord{}, err
	}
	baselineMS := float64(time.Since(t0)) / float64(time.Millisecond)

	t1 := time.Now()
	delta, err := trainsim.SimulateEpochs(cfg, trainsim.SweepOptions{Epochs: epochs})
	if err != nil {
		return BenchRecord{}, err
	}
	optimizedMS := float64(time.Since(t1)) / float64(time.Millisecond)

	if math.Abs(delta.Total.Sec()-base.Total.Sec()) > 1e-6*base.Total.Sec() {
		return BenchRecord{}, fmt.Errorf(
			"experiments: longsim delta total %v != baseline %v", delta.Total, base.Total)
	}
	return BenchRecord{
		Machine:        m.Name,
		Dataset:        "IG",
		Model:          gnn.KindSAGE.String(),
		Layout:         "longsim",
		Policy:         "delta",
		EpochSec:       delta.Total.Sec() / float64(epochs),
		SimEpochs:      epochs,
		SimResims:      delta.Resims,
		SimCacheHits:   delta.CacheHits,
		SimBaselineMS:  baselineMS,
		SimOptimizedMS: optimizedMS,
	}, nil
}
