package experiments

import "testing"

func TestDriftRecord(t *testing.T) {
	rec, err := DriftRecord(200)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Layout != "drift" || rec.Policy != "adaptive" {
		t.Errorf("row identity %s/%s, want drift/adaptive", rec.Layout, rec.Policy)
	}
	if rec.DriftEpochs != 200 || rec.DriftEvents != 1 {
		t.Errorf("epochs=%d events=%d, want 200 and 1", rec.DriftEpochs, rec.DriftEvents)
	}
	if rec.EpochSec <= 0 || rec.DriftOracleEpochSec <= 0 {
		t.Errorf("non-positive epoch times: adaptive %v oracle %v", rec.EpochSec, rec.DriftOracleEpochSec)
	}
	// The constructor enforces the migration differential; the record must
	// carry the evidence.
	if rec.DriftOracleGiB <= 0 || rec.DriftMovedGiB >= 0.5*rec.DriftOracleGiB {
		t.Errorf("migration bills: adaptive %.3g GiB vs oracle %.3g GiB", rec.DriftMovedGiB, rec.DriftOracleGiB)
	}
	// Determinism: the seeded schedule must reproduce the row exactly.
	again, err := DriftRecord(200)
	if err != nil {
		t.Fatal(err)
	}
	if again != rec {
		t.Errorf("drift record not deterministic:\n%+v\n%+v", rec, again)
	}
}
