// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): each generator returns a Table whose rows mirror the
// series the paper plots, produced by the same pipeline a user of the
// library would run (automatic module, epoch simulator, baselines). The
// bench harness at the repository root wraps one benchmark around each
// generator.
package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Cell is one table entry: a number, an OOM marker, or free text.
type Cell struct {
	Value float64
	OOM   bool
	Text  string
}

// Num makes a numeric cell.
func Num(v float64) Cell { return Cell{Value: v} }

// OOMCell marks a configuration that cannot run.
func OOMCell() Cell { return Cell{OOM: true} }

// Txt makes a text cell.
func Txt(s string) Cell { return Cell{Text: s} }

func (c Cell) String() string {
	switch {
	case c.OOM:
		return "OOM"
	case c.Text != "":
		return c.Text
	case math.Abs(c.Value) >= 1000:
		return fmt.Sprintf("%.0f", c.Value)
	case math.Abs(c.Value) >= 10:
		return fmt.Sprintf("%.1f", c.Value)
	default:
		return fmt.Sprintf("%.2f", c.Value)
	}
}

// Row is one labeled table row.
type Row struct {
	Label string
	Cells []Cell
}

// Table is one regenerated figure or table.
type Table struct {
	ID      string // "fig10", "table2", ...
	Title   string
	Columns []string // not counting the label column
	Rows    []Row
	Notes   []string
}

// Cell returns the cell at (rowLabel, column), if present.
func (t *Table) Cell(rowLabel, column string) (Cell, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return Cell{}, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && ci < len(r.Cells) {
			return r.Cells[ci], true
		}
	}
	return Cell{}, false
}

// MustValue returns the numeric value at (rowLabel, column), panicking on
// absence or OOM — a convenience for tests and benches.
func (t *Table) MustValue(rowLabel, column string) float64 {
	c, ok := t.Cell(rowLabel, column)
	if !ok {
		panic(fmt.Sprintf("experiments: %s has no cell (%q, %q)", t.ID, rowLabel, column))
	}
	if c.OOM {
		panic(fmt.Sprintf("experiments: %s cell (%q, %q) is OOM", t.ID, rowLabel, column))
	}
	return c.Value
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	width := len("config")
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "config")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width+2, r.Label)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, "%12s", c)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
