package experiments

import (
	"math"
	"testing"
)

// TestClusterBenchRecord pins the acceptance differential the row
// constructor enforces: the flow-planned 4-node reference beats DistDGL
// and agrees with the analytical composition, and the record carries the
// cluster field group the compare gate and dashboards consume.
func TestClusterBenchRecord(t *testing.T) {
	rec, err := ClusterBenchRecord(4)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Layout != "cluster" || rec.Dataset != clusterBenchDataset {
		t.Fatalf("record identity %s/%s, want cluster/%s", rec.Layout, rec.Dataset, clusterBenchDataset)
	}
	if rec.ClusterNodes != 4 {
		t.Errorf("ClusterNodes = %d, want 4", rec.ClusterNodes)
	}
	if rec.ClusterNICGbps != 100 {
		t.Errorf("ClusterNICGbps = %g, want 100", rec.ClusterNICGbps)
	}
	if rec.EpochSec <= 0 || rec.ClusterDistDGLSec <= 0 {
		t.Fatalf("non-positive epochs: flow %g, distdgl %g", rec.EpochSec, rec.ClusterDistDGLSec)
	}
	if rec.ClusterDistDGLSec <= rec.EpochSec {
		t.Errorf("flow epoch %.3fs does not beat DistDGL %.3fs", rec.EpochSec, rec.ClusterDistDGLSec)
	}
	if rel := math.Abs(rec.EpochSec-rec.ClusterAnalyticSec) / rec.ClusterAnalyticSec; rel > 0.02 {
		t.Errorf("flow %.3fs vs analytical %.3fs: rel %.4f > 0.02", rec.EpochSec, rec.ClusterAnalyticSec, rel)
	}
	if rec.ClusterRemoteGiB <= 0 {
		t.Errorf("ClusterRemoteGiB = %g, want > 0 at r=%g", rec.ClusterRemoteGiB, clusterBenchReplication)
	}

	if _, err := ClusterBenchRecord(0); err == nil {
		t.Error("ClusterBenchRecord(0) succeeded, want error")
	}
}

// TestClusterBenchDeterministic: the compare gate holds epoch_sec steady
// across runs, so two fresh records must agree bit-for-bit.
func TestClusterBenchDeterministic(t *testing.T) {
	a, err := ClusterBenchRecord(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterBenchRecord(2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("records differ across runs:\n%+v\n%+v", a, b)
	}
}

func TestClusterVsDistDGLTable(t *testing.T) {
	tbl, err := ClusterVsDistDGL()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("table has %d rows, want 3 (2/4/8 nodes)", len(tbl.Rows))
	}
	var prev float64 = math.Inf(1)
	for _, r := range tbl.Rows {
		if len(r.Cells) != len(tbl.Columns) {
			t.Fatalf("row %q has %d cells, want %d", r.Label, len(r.Cells), len(tbl.Columns))
		}
		flow := r.Cells[0].Value
		if flow <= 0 || flow >= prev {
			t.Errorf("row %q: flow epoch %.3fs not positive and decreasing with nodes (prev %.3fs)",
				r.Label, flow, prev)
		}
		prev = flow
		if dgl := r.Cells[4]; !dgl.OOM && dgl.Value <= flow {
			t.Errorf("row %q: distdgl %.3fs not slower than flow %.3fs", r.Label, dgl.Value, flow)
		}
	}
}
