package experiments

import (
	"fmt"
	"math"

	"moment/internal/baselines"
	"moment/internal/cluster"
	"moment/internal/gnn"
	"moment/internal/topology"
	"moment/internal/units"
)

// Cluster bench row calibration: the 4-node Machine B reference on PA —
// the dataset the DistDGL baseline survives without OOM (IG, UK and CL
// exceed its 5x-expanded cluster memory) — with a quarter of the SSD tier
// replicated into every node.
const (
	clusterBenchDataset     = "PA"
	clusterBenchReplication = 0.25
)

var clusterBenchNIC = units.Gbps(100)

// ClusterBenchRecord runs the multi-node reference: the flow-based cluster
// planner on `nodes` Machine B nodes, the analytical composition on the
// same configuration, and the calibrated DistDGL baseline. The constructor
// re-checks the PR's acceptance criteria — the flow planner beats DistDGL,
// and agrees with the analytical model on the non-blocking core — so a
// regression fails record generation itself, not just the compare gate.
// EpochSec is the flow-planned epoch, the deterministic quantity the
// -compare gate holds steady.
func ClusterBenchRecord(nodes int) (BenchRecord, error) {
	if nodes <= 0 {
		return BenchRecord{}, fmt.Errorf("experiments: cluster bench across %d nodes", nodes)
	}
	m := topology.MachineB()
	p, err := topology.MomentPlacementB(m)
	if err != nil {
		return BenchRecord{}, err
	}
	w := wl(clusterBenchDataset, gnn.KindSAGE)
	cfg := cluster.Config{
		Node:        m,
		Nodes:       nodes,
		NICBW:       clusterBenchNIC,
		Workload:    w,
		Placement:   p,
		Replication: clusterBenchReplication,
	}

	flowCfg := cfg
	flowCfg.Flow = true
	flow, err := cluster.Simulate(flowCfg)
	if err != nil {
		return BenchRecord{}, fmt.Errorf("experiments: cluster flow: %w", err)
	}
	if flow.OOM != "" {
		return BenchRecord{}, fmt.Errorf("experiments: cluster flow OOM: %s", flow.OOM)
	}
	ana, err := cluster.Simulate(cfg)
	if err != nil {
		return BenchRecord{}, fmt.Errorf("experiments: cluster analytical: %w", err)
	}
	if ana.OOM != "" {
		return BenchRecord{}, fmt.Errorf("experiments: cluster analytical OOM: %s", ana.OOM)
	}
	if rel := math.Abs(flow.EpochTime.Sec()-ana.EpochTime.Sec()) / ana.EpochTime.Sec(); rel > 0.02 {
		return BenchRecord{}, fmt.Errorf(
			"experiments: flow cluster diverged from analytical on a non-blocking core: %.3fs vs %.3fs (rel %.4f)",
			flow.EpochTime.Sec(), ana.EpochTime.Sec(), rel)
	}

	dgl, err := baselines.DistDGL(m, baselines.DefaultDistDGL(), w)
	if err != nil {
		return BenchRecord{}, err
	}
	if dgl.OOM != "" {
		return BenchRecord{}, fmt.Errorf("experiments: DistDGL OOM on %s: %s", clusterBenchDataset, dgl.OOM)
	}
	if flow.Throughput <= dgl.Throughput {
		return BenchRecord{}, fmt.Errorf(
			"experiments: flow cluster %.0f v/s does not beat DistDGL %.0f v/s",
			flow.Throughput, dgl.Throughput)
	}

	node := flow.Node
	return BenchRecord{
		Machine:        m.Name,
		Dataset:        clusterBenchDataset,
		Model:          gnn.KindSAGE.String(),
		Layout:         "cluster",
		Policy:         "ddak",
		EpochSec:       flow.EpochTime.Sec(),
		IOSec:          flow.LocalIO.Sec(),
		PredictedIOSec: node.PredictedIO.Sec(),
		ComputeSec:     flow.ComputeTime.Sec(),
		SampleSec:      flow.SampleTime.Sec(),
		HitGPU:         node.HitGPU,
		HitCPU:         node.HitCPU,
		QPIGiB:         node.QPIBytes / (1 << 30),
		ThroughputVPS:  flow.Throughput,

		ClusterNodes:       nodes,
		ClusterNICGbps:     float64(clusterBenchNIC) * 8 / 1e9,
		ClusterReplication: clusterBenchReplication,
		ClusterRemoteGiB:   flow.RemoteBytes / (1 << 30),
		ClusterNICSec:      flow.NICTime.Sec(),
		ClusterFlowSec:     flow.FlowTime.Sec(),
		ClusterAnalyticSec: ana.EpochTime.Sec(),
		ClusterDistDGLSec:  dgl.EpochTime.Sec(),
	}, nil
}

// ClusterVsDistDGL reproduces the §5 multi-node comparison as a table:
// flow-planned Moment cluster vs the analytical composition vs DistDGL
// across cluster sizes on the PA reference.
func ClusterVsDistDGL() (*Table, error) {
	t := &Table{
		ID:      "cluster",
		Title:   "§5 Multi-node: flow-planned cluster vs DistDGL (Machine B, PA, r=0.25)",
		Columns: []string{"flow epoch (s)", "analytic epoch (s)", "nic stage (s)", "remote GiB", "distdgl epoch (s)", "speedup"},
		Notes: []string{
			"flow epoch and analytic epoch agree on the non-blocking core by construction",
			"speedup = distdgl epoch / flow epoch",
		},
	}
	m := topology.MachineB()
	p, err := topology.MomentPlacementB(m)
	if err != nil {
		return nil, err
	}
	w := wl(clusterBenchDataset, gnn.KindSAGE)
	for _, nodes := range []int{2, 4, 8} {
		cfg := cluster.Config{
			Node: m, Nodes: nodes, NICBW: clusterBenchNIC,
			Workload: w, Placement: p, Replication: clusterBenchReplication,
		}
		flowCfg := cfg
		flowCfg.Flow = true
		flow, err := cluster.Simulate(flowCfg)
		if err != nil {
			return nil, err
		}
		ana, err := cluster.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		dglCfg := baselines.DefaultDistDGL()
		dglCfg.Machines = nodes
		dgl, err := baselines.DistDGL(m, dglCfg, w)
		if err != nil {
			return nil, err
		}
		cells := []Cell{
			Num(flow.EpochTime.Sec()),
			Num(ana.EpochTime.Sec()),
			Num(flow.NICTime.Sec()),
			Num(flow.RemoteBytes / (1 << 30)),
		}
		if dgl.OOM != "" {
			cells = append(cells, OOMCell(), Txt("-"))
		} else {
			cells = append(cells,
				Num(dgl.EpochTime.Sec()),
				Txt(fmt.Sprintf("%.1fx", dgl.EpochTime.Sec()/flow.EpochTime.Sec())))
		}
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%d nodes", nodes), Cells: cells})
	}
	return t, nil
}
