package experiments

import (
	"fmt"
	"math"

	"moment/internal/adaptive"
	"moment/internal/core"
	"moment/internal/cost"
	"moment/internal/ddak"
	"moment/internal/gnn"
	"moment/internal/maxflow"
	"moment/internal/placement"
	"moment/internal/sample"
	"moment/internal/simio"
	"moment/internal/topology"
	"moment/internal/trainsim"
)

// CostTable reproduces the §4.2 monetary comparison: cloud cost ratio and
// 5-year TCO (paper: ~50% cost; $90,270 vs $181,100).
func CostTable() *Table {
	rates := cost.DefaultCloudRates()
	tco := cost.DefaultTCO()
	t := &Table{
		ID:      "cost",
		Title:   "Monetary cost: Moment single machine vs DistDGL 4-node cluster (§4.2)",
		Columns: []string{"usd"},
	}
	t.Rows = append(t.Rows,
		Row{Label: "cloud $/h moment", Cells: []Cell{Num(float64(rates.MomentHourly(8 * 3.84)))}},
		Row{Label: "cloud $/h distdgl", Cells: []Cell{Num(float64(rates.DistDGLHourly(4)))}},
		Row{Label: "cloud ratio", Cells: []Cell{Num(rates.CostRatio(8*3.84, 4))}},
		Row{Label: "tco-5y machine A/B", Cells: []Cell{Num(float64(tco.TCO(cost.MachineASpec())))}},
		Row{Label: "tco-5y cluster C", Cells: []Cell{Num(float64(tco.TCO(cost.ClusterCSpec())))}},
	)
	return t
}

// InletBandwidth reproduces the §4.3 per-GPU inlet comparison on machine B
// (paper: Moment 15.61 GB/s average vs 10.92 GB/s for layout (c)).
func InletBandwidth() (*Table, error) {
	t := &Table{
		ID:      "inlet",
		Title:   "Average per-GPU inlet bandwidth on machine B, GiB/s (§4.3)",
		Columns: []string{"gib-per-s"},
	}
	m := topology.MachineB()
	w := wl("IG", gnn.KindSAGE)
	moment, _, err := searchMoment(m, w)
	if err != nil {
		return nil, err
	}
	rc, err := epochClassic(m, topology.LayoutC, w)
	if err != nil {
		return nil, err
	}
	avg := func(r *trainsim.Result) float64 {
		s := 0.0
		for _, bw := range r.PerGPUIOBW {
			s += bw.GiBpsf()
		}
		return s / float64(len(r.PerGPUIOBW))
	}
	t.Rows = append(t.Rows,
		Row{Label: "moment", Cells: []Cell{Num(avg(moment))}},
		Row{Label: "layout (c)", Cells: []Cell{Num(avg(rc))}},
	)
	return t, nil
}

// PreprocessingCost reproduces the §3.3 planning-cost claim: the offline
// max-flow + DDAK pass versus one training epoch (paper: ~14 s planning vs
// ~90 s/epoch on UK with 2 GPUs; amortizes to <1% of training).
func PreprocessingCost() (*Table, error) {
	t := &Table{
		ID:      "preprocess",
		Title:   "Offline planning cost vs epoch time (§3.3)",
		Columns: []string{"seconds"},
	}
	m := topology.MachineB().WithGPUs(2)
	plan, err := core.CoOptimize(core.Input{Machine: m, Workload: wl("UK", gnn.KindSAGE)})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		Row{Label: "planning", Cells: []Cell{Num(plan.PlanningTime.Seconds())}},
		Row{Label: "epoch", Cells: []Cell{Num(plan.Epoch.EpochTime.Sec())}},
	)
	frac := plan.PlanningTime.Seconds() / (plan.Epoch.EpochTime.Sec() * 48) * 100
	t.Notes = append(t.Notes,
		fmt.Sprintf("planning amortized over 48 epochs: %.2f%% of training", frac))
	return t, nil
}

// AblationSolvers compares the three max-flow solvers on the machine B
// communication graph (DESIGN.md ablation; values must agree).
func AblationSolvers() (*Table, error) {
	t := &Table{
		ID:      "ablation-solvers",
		Title:   "Max-flow solver comparison on the machine B communication graph",
		Columns: []string{"flow-gibps"},
	}
	m := topology.MachineB()
	p, err := topology.MomentPlacementB(m)
	if err != nil {
		return nil, err
	}
	// Build a pure-rate network: storage egress rates against GPU slots.
	for _, solver := range []maxflow.Solver{maxflow.Dinic, maxflow.EdmondsKarp, maxflow.PushRelabel} {
		g := maxflow.New(2)
		s, sink := 0, 1
		ap := map[string]int{}
		for _, pt := range m.Points {
			ap[pt.ID] = g.AddNode(pt.ID)
		}
		rcs := m.RootComplexes()
		for i := 0; i < len(rcs); i++ {
			for j := 0; j < len(rcs); j++ {
				if i != j {
					g.AddEdge(ap[rcs[i]], ap[rcs[j]], float64(m.QPIBW))
				}
			}
		}
		for _, pt := range m.Points {
			if pt.Kind == topology.Switch {
				g.AddEdge(ap[pt.Parent], ap[pt.ID], float64(pt.UplinkBW))
				g.AddEdge(ap[pt.ID], ap[pt.Parent], float64(pt.UplinkBW))
			}
		}
		for _, at := range p.SSDAt {
			n := g.AddNode("ssd")
			g.AddEdge(s, n, float64(m.SSDBW))
			g.AddEdge(n, ap[at], float64(m.PCIeX4))
		}
		for _, rc := range rcs {
			n := g.AddNode("dram")
			g.AddEdge(s, n, float64(m.DRAMBW))
			g.AddEdge(n, ap[rc], float64(m.DRAMBW))
		}
		for _, at := range p.GPUAt {
			n := g.AddNode("gpu")
			g.AddEdge(ap[at], n, float64(m.PCIeX16))
			g.AddEdge(n, sink, maxflow.Inf)
		}
		flow := g.MaxFlow(s, sink, solver)
		t.Rows = append(t.Rows, Row{Label: solver.String(), Cells: []Cell{
			Num(flow / (1 << 30)),
		}})
	}
	return t, nil
}

// All runs every generator in paper order, returning the tables. Failures
// abort with the failing experiment's id.
func All() ([]*Table, error) {
	type gen struct {
		id string
		f  func() (*Table, error)
	}
	gens := []gen{
		{"table1", func() (*Table, error) { return Machines(), nil }},
		{"table2", func() (*Table, error) { return Datasets(), nil }},
		{"fig1", Figure1},
		{"fig2", Figure2},
		{"fig3", Figure3},
		{"fig4", Figure4},
		{"fig5", Figure5},
		{"fig6", Figure6},
		{"fig7", Figure7},
		{"fig10", Figure10},
		{"fig11", Figure11},
		{"fig12", Figure12},
		{"fig13", Figure13},
		{"fig14", Figure14},
		{"fig15", Figure15},
		{"fig16", Figure16},
		{"fig17", Figure17},
		{"fig18", Figure18},
		{"cost", func() (*Table, error) { return CostTable(), nil }},
		{"ssd-micro", SSDMicrobench},
		{"inlet", InletBandwidth},
		{"preprocess", PreprocessingCost},
		{"ablation-solvers", AblationSolvers},
		{"ablation-symmetry", AblationSymmetry},
		{"ablation-pooling", AblationPooling},
		{"generalization", Generalization},
		{"adaptive-drift", AdaptiveDrift},
		{"cluster", ClusterVsDistDGL},
	}
	var out []*Table
	for _, g := range gens {
		tbl, err := g.f()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", g.id, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// SSDMicrobench reproduces the §2.2 storage claims with the
// request-granular queue-pair simulator: a single P5510 near 6 GiB/s
// effective, eight of them at ~48 GiB/s aggregate under the GPU-initiated
// stack, and the canonical IOPS-vs-queue-depth curve.
func SSDMicrobench() (*Table, error) {
	t := &Table{
		ID:      "ssd-micro",
		Title:   "NVMe queue-pair microbenchmarks (§2.2: 6 GiB/s per SSD, 48 GiB/s x8)",
		Columns: []string{"value"},
	}
	dev := simio.DeviceConfig{SSDSpec: simio.P5510()}
	// Single-device 4K random-read IOPS at deep queue depth.
	sim, err := simio.NewQPairSim(simio.QPairConfig{Entries: 1024, DoorbellBatch: 32}, dev, 4096)
	if err != nil {
		return nil, err
	}
	r, err := sim.Run(200_000)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		Row{Label: "4k-iops qd1024", Cells: []Cell{Num(r.IOPS)}},
		Row{Label: "4k-latency-us", Cells: []Cell{Num(r.AvgLatency * 1e6)}},
	)
	// Coalesced (8K effective) bandwidth per device.
	sim8, err := simio.NewQPairSim(simio.QPairConfig{Entries: 1024, DoorbellBatch: 32}, dev, 8192)
	if err != nil {
		return nil, err
	}
	r8, err := sim8.Run(150_000)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "8k-bw-gibps", Cells: []Cell{Num(r8.Bandwidth / (1 << 30))}})
	// Eight-device aggregate under the shared fluid stack.
	specs := make([]simio.SSDSpec, 8)
	ids := make([]int, 8)
	for i := range specs {
		specs[i] = simio.P5510()
		ids[i] = i
	}
	stack, err := simio.New(simio.Config{SSDs: specs, QueueDepth: 256, RequestBytes: 4096, Coalesce: 2})
	if err != nil {
		return nil, err
	}
	reqs := map[[2]int]int64{}
	for g := 0; g < 4; g++ {
		if err := stack.AttachGPU(g, ids); err != nil {
			return nil, err
		}
		for _, d := range ids {
			reqs[[2]int{g, d}] = 200_000
		}
	}
	agg, err := stack.Run(reqs)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, bw := range agg.PerSSDBandwidth {
		total += bw
	}
	t.Rows = append(t.Rows, Row{Label: "8-ssd-aggregate-gibps", Cells: []Cell{Num(total / (1 << 30))}})
	// IOPS vs queue depth.
	depths := []int{2, 8, 32, 128, 512}
	curve, err := simio.QDCurve(dev, 4096, depths, 60_000)
	if err != nil {
		return nil, err
	}
	for _, d := range depths {
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("iops qd%d", d),
			Cells: []Cell{Num(curve[d])},
		})
	}
	return t, nil
}

// Generalization runs the automatic module across every machine in the
// catalog — the evaluation platforms plus vendor-inspired chassis — and
// reports the optimized throughput against the worst feasible placement,
// backing the §3.3 "wide applicability to various server topologies"
// claim on both balanced and deeply cascaded machines.
func Generalization() (*Table, error) {
	t := &Table{
		ID:      "generalization",
		Title:   "Automatic module across server topologies (§3.3 wide applicability)",
		Columns: []string{"optimized", "worst", "gain-x"},
	}
	for _, m := range []*topology.Machine{
		topology.MachineA(), topology.MachineB(),
		topology.Supermicro420GP(), topology.H3Falcon4016(),
	} {
		w := wl("IG", gnn.KindSAGE)
		plan, err := core.CoOptimize(core.Input{Machine: m, Workload: w, Search: placement.Options{KeepScores: true}})
		if err != nil {
			return nil, err
		}
		worst, err := worstCandidate(m, w)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Label: m.Name, Cells: []Cell{
			Num(plan.Epoch.Throughput), Num(worst),
			Num(plan.Epoch.Throughput / worst),
		}})
	}
	return t, nil
}

// worstCandidate finds the slowest feasible enumerated placement by the
// cheap max-flow score and simulates only that one end to end.
func worstCandidate(m *topology.Machine, w trainsim.Workload) (float64, error) {
	cands, err := placement.Enumerate(m)
	if err != nil || len(cands) == 0 {
		return 0, fmt.Errorf("experiments: no candidates on %s: %v", m.Name, err)
	}
	dem, _, err := trainsim.PlanDemand(trainsim.Config{Machine: m, Placement: cands[0], Workload: w})
	if err != nil {
		return 0, err
	}
	res, err := placement.Search(m, dem, placement.Options{KeepScores: true})
	if err != nil {
		return 0, err
	}
	var worstPl *topology.Placement
	worstT := -1.0
	for _, sc := range res.Scores {
		if sc.Err == nil && sc.Time.Sec() > worstT {
			worstT = sc.Time.Sec()
			worstPl = sc.Placement
		}
	}
	if worstPl == nil {
		return 0, fmt.Errorf("experiments: no feasible candidate on %s", m.Name)
	}
	r, err := trainsim.SimulateEpoch(trainsim.Config{Machine: m, Placement: worstPl, Workload: w})
	if err != nil {
		return 0, err
	}
	if r.OOM != "" {
		return 0, fmt.Errorf("experiments: worst candidate OOM on %s: %s", m.Name, r.OOM)
	}
	if math.IsInf(r.Throughput, 1) || r.Throughput <= 0 {
		return 0, fmt.Errorf("experiments: degenerate worst throughput on %s", m.Name)
	}
	return r.Throughput, nil
}

// AdaptiveDrift reproduces the §5 dynamic-workload scenario end to end:
// plan a layout offline, rotate the hot set (a drifting online workload),
// and compare the static layout's fast-tier hit rate against the adaptive
// replanner's after its drift-triggered DDAK re-placement.
func AdaptiveDrift() (*Table, error) {
	t := &Table{
		ID:      "adaptive-drift",
		Title:   "Adaptive placement under workload drift (§5 future work, implemented)",
		Columns: []string{"hit-%"},
	}
	const n = 4000
	hot, err := sample.ZipfHotness(n, 1.0)
	if err != nil {
		return nil, err
	}
	itemBytes := make([]float64, n)
	for i := range itemBytes {
		itemBytes[i] = 4096
	}
	bins := []ddak.Bin{
		{Name: "hbm", Tier: ddak.TierGPU, Capacity: 200 * 4096, Traffic: 0.5},
		{Name: "dram", Tier: ddak.TierCPU, Capacity: 400 * 4096, Traffic: 0.2},
		{Name: "ssd0", Tier: ddak.TierSSD, Capacity: n * 4096, Traffic: 0.15},
		{Name: "ssd1", Tier: ddak.TierSSD, Capacity: n * 4096, Traffic: 0.15},
	}
	rp, err := adaptive.NewReplanner(hot, itemBytes, bins, 100, 1, 0.15)
	if err != nil {
		return nil, err
	}
	h0, err := adaptive.HitRate(rp.Current(), hot)
	if err != nil {
		return nil, err
	}
	// Drift: rotate the ranking by half the id space.
	drifted := make([]float64, n)
	for i := range hot {
		drifted[(i+n/2)%n] = hot[i]
	}
	static := rp.Current()
	hStatic, err := adaptive.HitRate(static, drifted)
	if err != nil {
		return nil, err
	}
	mig, err := rp.Maybe(drifted)
	if err != nil {
		return nil, err
	}
	hAdaptive, err := adaptive.HitRate(rp.Current(), drifted)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		Row{Label: "offline plan", Cells: []Cell{Num(h0 * 100)}},
		Row{Label: "static after drift", Cells: []Cell{Num(hStatic * 100)}},
		Row{Label: "adaptive after drift", Cells: []Cell{Num(hAdaptive * 100)}},
	)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"drift TV=%.2f triggered a re-placement moving %d items (%.1f MiB)",
		mig.Drift, mig.MovedItems, mig.MovedBytes/(1<<20)))
	return t, nil
}
