package experiments

import (
	"testing"

	"moment/internal/obs"
)

// ObsRecord measures the observability hot paths and reports them as a
// benchmark row (layout "obs") that joins the committed BENCH_*.json set.
// The row's EpochSec is 0 — there is no simulated epoch to gate — but the
// allocation counts are committed next to the timing rows so a future
// change that puts an allocation on the disabled Record/Add path shows up
// in the diff (and momentbench refuses to even write the record).
//
// testing.AllocsPerRun is safe outside a test binary; it just runs the
// closure under ReadMemStats bracketing.
func ObsRecord() BenchRecord {
	var nilRec *obs.FlightRecorder
	disabledEvent := int(testing.AllocsPerRun(1000, func() {
		nilRec.Record(obs.Event{Kind: obs.EvCache, Name: "probe",
			Subject: "cand", Reason: "hit", V1: 1})
	}))
	var nilEx *obs.Explain
	disabledExplain := int(testing.AllocsPerRun(1000, func() {
		nilEx.Add(obs.ExplainStep{Stage: "score", Subject: "cand",
			Reason: "solved", Value: 1})
	}))
	rec := obs.NewFlightRecorder(1024)
	enabledEvent := int(testing.AllocsPerRun(1000, func() {
		rec.Record(obs.Event{Kind: obs.EvCache, Name: "probe",
			Subject: "cand", Reason: "hit", V1: 1})
	}))
	r := BenchRecord{
		Machine: "-", Dataset: "-", Model: "-",
		Layout: "obs", Policy: "-",
	}
	r.ObsDisabledEventAllocs = &disabledEvent
	r.ObsDisabledExplainAllocs = &disabledExplain
	r.ObsEnabledEventAllocs = &enabledEvent
	return r
}
