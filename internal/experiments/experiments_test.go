package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	tbl := Machines()
	if got := tbl.MustValue("machine A", "gpus"); got != 4 {
		t.Errorf("machine A gpus = %v", got)
	}
	if got := tbl.MustValue("machine C", "nodes"); got != 4 {
		t.Errorf("machine C nodes = %v", got)
	}
	if got := tbl.MustValue("machine A", "dram-gib"); got != 768 {
		t.Errorf("machine A dram = %v", got)
	}
}

func TestTable2(t *testing.T) {
	tbl := Datasets()
	if got := tbl.MustValue("CL", "vertices-M"); got != 1000 {
		t.Errorf("CL vertices = %v", got)
	}
	if got := tbl.MustValue("UK", "edges-B"); math.Abs(got-47.2) > 0.01 {
		t.Errorf("UK edges = %v", got)
	}
	if got := tbl.MustValue("PA", "feat-gib"); got != 56 {
		t.Errorf("PA feature storage = %v", got)
	}
}

func TestFigure1Shape(t *testing.T) {
	// Paper: (c) 14.9s best; (b) 26.7s worst; (b)/(c) = 1.79.
	tbl, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	a := tbl.MustValue("(a)", "epoch-s")
	b := tbl.MustValue("(b)", "epoch-s")
	c := tbl.MustValue("(c)", "epoch-s")
	d := tbl.MustValue("(d)", "epoch-s")
	if !(c <= a && c <= b && c <= d) {
		t.Errorf("(c) not best: a=%.1f b=%.1f c=%.1f d=%.1f", a, b, c, d)
	}
	if r := b / c; r < 1.4 || r > 2.6 {
		t.Errorf("(b)/(c) = %.2f, paper 1.79", r)
	}
	// Absolute epoch in the paper's ballpark (14.9s) within 2x.
	if c < 7 || c > 30 {
		t.Errorf("(c) epoch %.1fs far from paper 14.9s", c)
	}
}

func TestFigure2Shape(t *testing.T) {
	// Paper: (c) 18.6 < (d) 24.0 < (a) 28.4 <= (b) 29.7.
	tbl, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	a := tbl.MustValue("(a)", "epoch-s")
	b := tbl.MustValue("(b)", "epoch-s")
	c := tbl.MustValue("(c)", "epoch-s")
	d := tbl.MustValue("(d)", "epoch-s")
	if !(c < d && d < a && a <= b*1.05) {
		t.Errorf("ordering broken: a=%.1f b=%.1f c=%.1f d=%.1f", a, b, c, d)
	}
}

func TestFigure3And4Shape(t *testing.T) {
	// Paper: M-Hyperion layout (c) beats (b) by 1.86x (A) / 1.96x (B).
	for _, gen := range []func() (*Table, error){Figure3, Figure4} {
		tbl, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range []string{"IG", "UK"} {
			b := tbl.MustValue("(b)", col)
			c := tbl.MustValue("(c)", col)
			if r := c / b; r < 1.4 {
				t.Errorf("%s/%s: (c)/(b) throughput ratio %.2f, paper ~1.9", tbl.ID, col, r)
			}
		}
	}
}

func TestFigure5And6FlatScaling(t *testing.T) {
	// Paper: 2->4 GPU expansion under layout (d) gains little or loses.
	for _, gen := range []func() (*Table, error){Figure5, Figure6} {
		tbl, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range []string{"machine A", "machine B"} {
			if s := tbl.MustValue(row, "speedup"); s > 1.3 {
				t.Errorf("%s %s: speedup %.2f, want flat", tbl.ID, row, s)
			}
		}
	}
}

func TestFigure7(t *testing.T) {
	tbl, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	searched := tbl.MustValue("searched", "epoch-s")
	published := tbl.MustValue("published(fig7)", "epoch-s")
	// The search must match or beat the published hand-traced layout.
	if searched > published*1.05 {
		t.Errorf("searched %.1fs worse than published %.1fs", searched, published)
	}
	// Paper reports 13.2s; stay within ~2x.
	if searched < 5 || searched > 27 {
		t.Errorf("searched epoch %.1fs far from paper 13.2s", searched)
	}
}

func TestFigure10Shape(t *testing.T) {
	tbl, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	// OOM pattern (paper §4.2): M-GIDS dies on UK/CL; DistDGL on IG/UK/CL.
	for _, model := range []string{"GraphSAGE", "GAT"} {
		for _, ds := range []string{"UK", "CL"} {
			if c, ok := tbl.Cell(ds+"/"+model, "m-gids"); !ok || !c.OOM {
				t.Errorf("%s/%s: m-gids should OOM", ds, model)
			}
		}
		for _, ds := range []string{"IG", "UK", "CL"} {
			if c, ok := tbl.Cell(ds+"/"+model, "distdgl"); !ok || !c.OOM {
				t.Errorf("%s/%s: distdgl should OOM", ds, model)
			}
		}
		// Moment runs everything and wins where baselines run.
		for _, ds := range []string{"PA", "IG", "UK", "CL"} {
			if c, ok := tbl.Cell(ds+"/"+model, "moment"); !ok || c.OOM || c.Value <= 0 {
				t.Errorf("%s/%s: moment should run", ds, model)
			}
		}
		mom := tbl.MustValue("PA/"+model, "moment")
		gids := tbl.MustValue("PA/"+model, "m-gids")
		dgl := tbl.MustValue("PA/"+model, "distdgl")
		if mom <= gids || mom <= dgl {
			t.Errorf("PA/%s: moment %v not fastest (gids %v, dgl %v)", model, mom, gids, dgl)
		}
		if r := mom / dgl; r < 1.5 || r > 6 {
			t.Errorf("PA/%s: moment/distdgl = %.2f, paper up to 3.02", model, r)
		}
	}
}

func TestFigure11And12MomentWins(t *testing.T) {
	for _, gen := range []func() (*Table, error){Figure11, Figure12} {
		tbl, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tbl.Rows {
			moment := row.Cells[4].Value
			for i, l := range []string{"(a)", "(b)", "(c)", "(d)"} {
				if moment < row.Cells[i].Value*0.98 {
					t.Errorf("%s %s: moment %v below %s %v",
						tbl.ID, row.Label, moment, l, row.Cells[i].Value)
				}
			}
		}
	}
}

func TestFigure13PredictionTracks(t *testing.T) {
	tbl, err := Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 8 {
		t.Fatalf("only %d prediction rows", len(tbl.Rows))
	}
	worst := 0.0
	for _, row := range tbl.Rows {
		e := math.Abs(row.Cells[2].Value)
		if e > worst {
			worst = e
		}
	}
	// Paper max error 8.61%; the fluid fabric is optimistic on the
	// cascaded machine, so allow up to 20%.
	if worst > 20 {
		t.Errorf("max prediction error %.1f%%, want <= 20%%", worst)
	}
}

func TestFigure14And15DDAKGain(t *testing.T) {
	// Paper: up to +30.6% (A) and +34.0% (B).
	for _, gen := range []func() (*Table, error){Figure14, Figure15} {
		tbl, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		maxGain := 0.0
		for _, row := range tbl.Rows {
			g := row.Cells[2].Value
			if g < 0 {
				t.Errorf("%s %s: DDAK loses to hash (%.1f%%)", tbl.ID, row.Label, g)
			}
			if g > maxGain {
				maxGain = g
			}
		}
		if maxGain < 15 || maxGain > 70 {
			t.Errorf("%s: max DDAK gain %.1f%%, paper ~30-34%%", tbl.ID, maxGain)
		}
	}
}

func TestFigure16Scaling(t *testing.T) {
	tbl, err := Figure16()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"A", "B"} {
		mom := tbl.MustValue("machine "+m+" moment", "speedup")
		d := tbl.MustValue("machine "+m+" (d)", "speedup")
		if mom < 1.8 {
			t.Errorf("machine %s: moment 1->4 speedup %.2f, paper ~2.2", m, mom)
		}
		if d >= mom {
			t.Errorf("machine %s: packed layout scales (%.2f) >= moment (%.2f)", m, d, mom)
		}
	}
}

func TestFigure17QPIReduction(t *testing.T) {
	tbl, err := Figure17()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: DDAK reduces QPI traffic on every layout; our hash model has
	// near-zero QPI under layout (b) (everything on one socket), so assert
	// the layouts with real cross-socket traffic.
	for _, l := range []string{"(a)", "(c)", "(d)"} {
		red := tbl.MustValue(l, "reduction-%")
		if red <= 0 {
			t.Errorf("%s: DDAK did not reduce QPI traffic (%.1f%%)", l, red)
		}
	}
}

func TestFigure18NVLinkGain(t *testing.T) {
	tbl, err := Figure18()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: +11.7% on A, +6.8% on B.
	for _, m := range []string{"machine A", "machine B"} {
		g := tbl.MustValue(m, "gain-%")
		if g < 2 || g > 25 {
			t.Errorf("%s: NVLink gain %.1f%%, paper 6.8-11.7%%", m, g)
		}
	}
}

func TestCostTable(t *testing.T) {
	tbl := CostTable()
	if r := tbl.MustValue("cloud ratio", "usd"); r < 0.4 || r > 0.6 {
		t.Errorf("cloud cost ratio %.2f, paper ~0.5", r)
	}
	if v := tbl.MustValue("tco-5y machine A/B", "usd"); math.Abs(v-90270) > 5 {
		t.Errorf("TCO A/B %v, paper 90270", v)
	}
	if v := tbl.MustValue("tco-5y cluster C", "usd"); math.Abs(v-181100) > 5 {
		t.Errorf("TCO C %v, paper 181100", v)
	}
}

func TestInletBandwidth(t *testing.T) {
	tbl, err := InletBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	mom := tbl.MustValue("moment", "gib-per-s")
	c := tbl.MustValue("layout (c)", "gib-per-s")
	// Paper: 15.61 vs 10.92 GB/s; shape: moment higher.
	if mom <= c {
		t.Errorf("moment inlet %.1f <= layout (c) %.1f", mom, c)
	}
}

func TestPreprocessingCost(t *testing.T) {
	tbl, err := PreprocessingCost()
	if err != nil {
		t.Fatal(err)
	}
	plan := tbl.MustValue("planning", "seconds")
	epoch := tbl.MustValue("epoch", "seconds")
	// §3.3: planning amortizes to <1% of a 48-epoch run.
	if plan > epoch*48/100 {
		t.Errorf("planning %.2fs > 1%% of 48 epochs (%.2fs)", plan, epoch*48/100)
	}
}

func TestAblationSolversAgree(t *testing.T) {
	tbl, err := AblationSolvers()
	if err != nil {
		t.Fatal(err)
	}
	base := tbl.Rows[0].Cells[0].Value
	for _, row := range tbl.Rows[1:] {
		if math.Abs(row.Cells[0].Value-base) > 1e-6*base {
			t.Errorf("solver %s disagrees: %v vs %v", row.Label, row.Cells[0].Value, base)
		}
	}
}

func TestAblationSymmetry(t *testing.T) {
	tbl, err := AblationSymmetry()
	if err != nil {
		t.Fatal(err)
	}
	red := tbl.MustValue("machine A reduced", "candidates")
	full := tbl.MustValue("machine A full", "candidates")
	if red >= full {
		t.Errorf("reduction did not shrink machine A search: %v vs %v", red, full)
	}
	if math.Abs(tbl.MustValue("machine A reduced", "epoch-io-s")-
		tbl.MustValue("machine A full", "epoch-io-s")) > 0.01 {
		t.Error("reduction changed the optimum")
	}
}

func TestAblationPooling(t *testing.T) {
	tbl, err := AblationPooling()
	if err != nil {
		t.Fatal(err)
	}
	p1 := tbl.MustValue("n=1", "pools")
	p100 := tbl.MustValue("n=100", "pools")
	if p100 >= p1/10 {
		t.Errorf("pooling barely reduced decisions: %v vs %v", p100, p1)
	}
	// Quality stays close between n=1 and n=100 (paper fixes n=100).
	e1 := tbl.MustValue("n=1", "epoch-s")
	e100 := tbl.MustValue("n=100", "epoch-s")
	if e100 > e1*1.1 {
		t.Errorf("n=100 epoch %.1fs much worse than n=1 %.1fs", e100, e1)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Machines()
	s := tbl.String()
	for _, want := range []string{"table1", "machine A", "gpus"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if _, ok := tbl.Cell("machine A", "nope"); ok {
		t.Error("unknown column found")
	}
	if _, ok := tbl.Cell("nope", "gpus"); ok {
		t.Error("unknown row found")
	}
	if OOMCell().String() != "OOM" || Txt("x").String() != "x" {
		t.Error("cell rendering changed")
	}
}

func TestSSDMicrobench(t *testing.T) {
	tbl, err := SSDMicrobench()
	if err != nil {
		t.Fatal(err)
	}
	if v := tbl.MustValue("8-ssd-aggregate-gibps", "value"); v < 45 || v > 49 {
		t.Errorf("aggregate %.1f GiB/s, want ~48 (§2.2)", v)
	}
	if v := tbl.MustValue("8k-bw-gibps", "value"); v < 5.3 || v > 6.3 {
		t.Errorf("per-device %.2f GiB/s, want ~6", v)
	}
	if qd2, qd512 := tbl.MustValue("iops qd2", "value"), tbl.MustValue("iops qd512", "value"); qd2 >= qd512 {
		t.Errorf("QD curve not increasing: %0.f >= %.0f", qd2, qd512)
	}
}

func TestGeneralizationAcrossTopologies(t *testing.T) {
	tbl, err := Generalization()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d machines covered", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		gain := row.Cells[2].Value
		if gain < 1 {
			t.Errorf("%s: optimized slower than worst placement (%.2fx)", row.Label, gain)
		}
		// On every cataloged topology bad placement costs real time.
		if gain < 1.2 {
			t.Errorf("%s: optimization gain %.2fx suspiciously small", row.Label, gain)
		}
	}
}

func TestAdaptiveDrift(t *testing.T) {
	tbl, err := AdaptiveDrift()
	if err != nil {
		t.Fatal(err)
	}
	h0 := tbl.MustValue("offline plan", "hit-%")
	hs := tbl.MustValue("static after drift", "hit-%")
	ha := tbl.MustValue("adaptive after drift", "hit-%")
	if hs >= h0*0.6 {
		t.Errorf("drift barely hurt the static plan: %.1f%% vs %.1f%%", hs, h0)
	}
	if ha < h0*0.9 {
		t.Errorf("adaptive recovery incomplete: %.1f%% vs offline %.1f%%", ha, h0)
	}
}

func TestAllRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	tables, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 28 {
		t.Errorf("All produced %d tables, want 28", len(tables))
	}
}
