package experiments

import (
	"fmt"

	"moment/internal/gnn"
	"moment/internal/topology"
	"moment/internal/trainsim"
)

// DriftRecord benchmarks the closed adaptive loop against the from-scratch
// oracle over a long drifting horizon: the hotness distribution is
// reshuffled every 100 epochs and both modes chase it — the adaptive loop
// through the drift detector, incremental DDAK re-solve and payback
// billing, the oracle by re-planning from scratch on the true post-event
// distribution. EpochSec is the adaptive run's deterministic mean simulated
// epoch (the -compare gate holds it steady); the oracle's mean and both
// migration bills ride along. Producing the record also re-checks the
// acceptance differential — adaptive within 5% of the oracle's epoch time
// on under half its migrated bytes — so a regression fails the bench run
// even before the compare gate sees it.
func DriftRecord(epochs int) (BenchRecord, error) {
	if epochs < 200 {
		epochs = 200
	}
	m := topology.MachineB()
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		return BenchRecord{}, err
	}
	cfg := trainsim.Config{
		Machine:         m,
		Placement:       p,
		Workload:        wl("IG", gnn.KindSAGE),
		Cache:           trainsim.CachePartitioned,
		VirtualVertices: 2000,
	}
	opt := trainsim.DriftOptions{
		Epochs:   epochs,
		Schedule: trainsim.DriftSchedule{Every: 100, Kind: trainsim.DriftShuffle, Mag: 0.2, Seed: 42},
	}
	ad, err := trainsim.SimulateDriftEpochs(cfg, opt)
	if err != nil {
		return BenchRecord{}, fmt.Errorf("experiments: drift adaptive: %w", err)
	}
	opt.Oracle = true
	or, err := trainsim.SimulateDriftEpochs(cfg, opt)
	if err != nil {
		return BenchRecord{}, fmt.Errorf("experiments: drift oracle: %w", err)
	}
	if ratio := ad.MeanEpoch / or.MeanEpoch; ratio > 1.05 {
		return BenchRecord{}, fmt.Errorf(
			"experiments: drift adaptive epoch %.4fs is %.1f%% over oracle %.4fs (acceptance: <=5%%)",
			ad.MeanEpoch, (ratio-1)*100, or.MeanEpoch)
	}
	if or.MovedBytes > 0 && ad.MovedBytes >= 0.5*or.MovedBytes {
		return BenchRecord{}, fmt.Errorf(
			"experiments: drift adaptive migrated %.3g bytes, acceptance requires < half of oracle's %.3g",
			ad.MovedBytes, or.MovedBytes)
	}
	return BenchRecord{
		Machine:             m.Name,
		Dataset:             "IG",
		Model:               gnn.KindSAGE.String(),
		Layout:              "drift",
		Policy:              "adaptive",
		EpochSec:            ad.MeanEpoch,
		DriftEpochs:         epochs,
		DriftEvents:         ad.DriftEvents,
		DriftTrips:          ad.Trips,
		DriftReplans:        ad.Replans,
		DriftMovedGiB:       ad.MovedBytes / (1 << 30),
		DriftOracleGiB:      or.MovedBytes / (1 << 30),
		DriftOracleEpochSec: or.MeanEpoch,
	}, nil
}
