package experiments

import (
	"strings"
	"testing"
)

// compareFixture builds a baseline/new pair exercising every row status:
// an improvement, an in-band wobble, a regression, a configuration that
// disappeared, and a brand-new one.
func compareFixture() (old, now []BenchRecord) {
	mk := func(machine, layout string, epoch float64) BenchRecord {
		return BenchRecord{
			Machine: machine, Dataset: "IG", Model: "GraphSAGE",
			Layout: layout, Policy: "static", EpochSec: epoch,
		}
	}
	old = []BenchRecord{
		mk("A", "(a)", 20.0), // improves to 14
		mk("A", "(b)", 10.0), // wobbles to 10.5
		mk("B", "(a)", 8.0),  // regresses to 10
		mk("B", "(d)", 30.0), // missing in new
	}
	now = []BenchRecord{
		mk("A", "(a)", 14.0),
		mk("A", "(b)", 10.5),
		mk("B", "(a)", 10.0),
		mk("B", "moment", 6.0), // new configuration
	}
	return old, now
}

func TestCompareBenchClassification(t *testing.T) {
	old, now := compareFixture()
	rep := CompareBench(old, now, 0.10)
	want := map[string]CompareStatus{
		"A/IG/GraphSAGE/(a)/static":    StatusImprovement,
		"A/IG/GraphSAGE/(b)/static":    StatusOK,
		"B/IG/GraphSAGE/(a)/static":    StatusRegression,
		"B/IG/GraphSAGE/(d)/static":    StatusMissing,
		"B/IG/GraphSAGE/moment/static": StatusNew,
	}
	if len(rep.Rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rep.Rows), len(want))
	}
	for _, row := range rep.Rows {
		if row.Status != want[row.Key] {
			t.Errorf("%s: status %s, want %s", row.Key, row.Status, want[row.Key])
		}
	}
}

// TestCompareGateFails is the satellite gate test: a >10% regression must
// make Err non-nil (momentbench -compare exits non-zero on it), and the
// error must name the offending configuration.
func TestCompareGateFails(t *testing.T) {
	old, now := compareFixture()
	rep := CompareBench(old, now, 0.10)
	err := rep.Err()
	if err == nil {
		t.Fatal("25% regression passed the 10% gate")
	}
	if !strings.Contains(err.Error(), "B/IG/GraphSAGE/(a)/static") {
		t.Errorf("gate error does not name the regressed configuration: %v", err)
	}
	if regs := rep.Regressions(); len(regs) != 1 {
		t.Errorf("%d regressions, want 1", len(regs))
	}
}

func TestCompareGatePasses(t *testing.T) {
	old, _ := compareFixture()
	// Identical records: everything in-band, missing/new rows don't trip it.
	rep := CompareBench(old, old, 0.10)
	if err := rep.Err(); err != nil {
		t.Fatalf("identical record sets failed the gate: %v", err)
	}
	for _, row := range rep.Rows {
		if row.Status != StatusOK {
			t.Errorf("%s: status %s on identical sets", row.Key, row.Status)
		}
	}
	// A 25% slowdown passes a looser 30% gate.
	loose := CompareBench(
		[]BenchRecord{{Machine: "A", EpochSec: 8}},
		[]BenchRecord{{Machine: "A", EpochSec: 10}}, 0.30)
	if err := loose.Err(); err != nil {
		t.Errorf("25%% slowdown failed a 30%% gate: %v", err)
	}
}

func TestCompareThresholdDefault(t *testing.T) {
	rep := CompareBench(nil, nil, 0)
	if rep.Threshold != 0.10 {
		t.Errorf("default threshold %v, want 0.10", rep.Threshold)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	rep := CompareBench(
		[]BenchRecord{{Machine: "A", EpochSec: 0}},
		[]BenchRecord{{Machine: "A", EpochSec: 5}}, 0.10)
	if rep.Rows[0].Status != StatusRegression {
		t.Errorf("going from 0 to 5 s/epoch classified %s", rep.Rows[0].Status)
	}
}

// TestCompareReportGolden pins the rendered -compare output: the header,
// column alignment, signed percentage deltas, and missing/new rows sorted
// to the bottom.
func TestCompareReportGolden(t *testing.T) {
	old, now := compareFixture()
	checkGolden(t, "bench_compare", CompareBench(old, now, 0.10).String())
}

// TestCompareAgainstCommittedBaseline replays the real gate: fresh
// BenchRecords against the committed BENCH_PR3.json must not regress.
func TestCompareAgainstCommittedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark grid in -short mode")
	}
	baseline, err := ReadBenchRecords("../../BENCH_PR3.json")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := BenchRecords()
	if err != nil {
		t.Fatal(err)
	}
	rep := CompareBench(baseline, recs, 0.10)
	if err := rep.Err(); err != nil {
		t.Errorf("planner rework regressed the benchmark grid:\n%s\n%v", rep, err)
	}
	for _, row := range rep.Rows {
		if row.Status == StatusMissing {
			t.Errorf("configuration %s vanished from the grid", row.Key)
		}
	}
}

func TestReadBenchRecordsErrors(t *testing.T) {
	if _, err := ReadBenchRecords("testdata/does-not-exist.json"); err == nil {
		t.Error("missing file did not error")
	}
	bad := "testdata/bad_bench.json"
	if _, err := ReadBenchRecords(bad); err == nil {
		t.Error("malformed JSON did not error")
	}
}
