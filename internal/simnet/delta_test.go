package simnet

import (
	"math"
	"testing"

	"moment/internal/faults"
)

// chatterbox is a FaultLookup that reports a fault boundary every second
// but never changes any link factor — the shape of a schedule whose events
// all target GPUs or SSD error rates. A correct delta loop reuses the
// previous rate allocation at every one of its boundaries.
type chatterbox struct{ horizon float64 }

func (c chatterbox) LinkFactor(string, float64) float64 { return 1 }
func (c chatterbox) NextChange(t float64) float64 {
	next := math.Floor(t) + 1
	if next > c.horizon {
		return math.Inf(1)
	}
	return next
}

func TestRateReuseAtQuietFaultBoundaries(t *testing.T) {
	build := func(f FaultLookup) *Net {
		n := New()
		a, _ := n.AddLink("a", 10)
		b, _ := n.AddLink("b", 7)
		n.AddFlow("f1", []LinkID{a, b}, 100, 0)
		n.AddFlow("f2", []LinkID{b}, 50, 3)
		if f != nil {
			n.SetFaults(f)
		}
		return n
	}
	quiet, err := build(nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := build(chatterbox{horizon: 100}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Makespan != noisy.Makespan {
		t.Errorf("quiet boundaries changed makespan: %v vs %v", noisy.Makespan, quiet.Makespan)
	}
	for i := range quiet.FlowDone {
		if quiet.FlowDone[i] != noisy.FlowDone[i] {
			t.Errorf("flow %d done drifted: %v vs %v", i, noisy.FlowDone[i], quiet.FlowDone[i])
		}
	}
	// Every per-second boundary that coincides with no admission or
	// completion must be a reuse, and the solve count must match the
	// boundary-free run exactly.
	if noisy.RateSolves != quiet.RateSolves {
		t.Errorf("noisy run solved rates %d times, quiet run %d — boundaries should all reuse",
			noisy.RateSolves, quiet.RateSolves)
	}
	if noisy.RateReuses == 0 {
		t.Error("no rate reuses across ~15 quiet fault boundaries")
	}
	if quiet.RateReuses != 0 {
		t.Errorf("quiet run reports %d reuses, want 0 (every event changes the active set)", quiet.RateReuses)
	}
}

func TestRateRecomputeWhenLinkFactorMoves(t *testing.T) {
	// Same scenario as TestThrottleMidFlow: the t=5 boundary changes the
	// trunk's factor, so it must trigger a recompute, not a reuse.
	n := New()
	l, _ := n.AddLink("trunk", 100)
	n.AddFlow("f", []LinkID{l}, 1000, 0)
	in, err := faults.NewInjector(&faults.Schedule{Events: []faults.Event{
		faults.Downtrain("trunk", 5, 0.5, 0),
	}})
	if err != nil {
		t.Fatal(err)
	}
	n.SetFaults(in)
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-15) > 1e-6 {
		t.Errorf("makespan %v, want 15", res.Makespan)
	}
	if res.RateSolves < 2 {
		t.Errorf("rate solves %d, want >= 2 (admission + factor change)", res.RateSolves)
	}
}

func TestClearFlowsReusesFabric(t *testing.T) {
	n := New()
	a, _ := n.AddLink("a", 10)
	b, _ := n.AddLink("b", 7)
	n.AddFlow("f1", []LinkID{a, b}, 100, 0)
	first, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}

	n.ClearFlows()
	if n.NumFlows() != 0 {
		t.Fatalf("ClearFlows left %d flows", n.NumFlows())
	}
	if n.NumLinks() != 2 {
		t.Fatalf("ClearFlows dropped links: %d left", n.NumLinks())
	}
	// Re-add the same flow; the rerun must match the first epoch exactly.
	n.AddFlow("f1", []LinkID{a, b}, 100, 0)
	second, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if first.Makespan != second.Makespan {
		t.Errorf("fabric reuse drifted: %v vs %v", second.Makespan, first.Makespan)
	}
	if first.FlowDone[0] != second.FlowDone[0] {
		t.Errorf("flow done drifted: %v vs %v", second.FlowDone[0], first.FlowDone[0])
	}
}
