package simnet

import (
	"math"
	"math/rand"
	"testing"
)

func TestSingleFlow(t *testing.T) {
	n := New()
	l, err := n.AddLink("pipe", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddFlow("f", []LinkID{l}, 100, 0); err != nil {
		t.Fatal(err)
	}
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Errorf("makespan %v, want 10", res.Makespan)
	}
	if math.Abs(res.LinkBytes[l]-100) > 1e-6 {
		t.Errorf("link bytes %v", res.LinkBytes[l])
	}
}

func TestFairSharing(t *testing.T) {
	// Two equal flows share a link: both finish at 2*B/C together.
	n := New()
	l, _ := n.AddLink("pipe", 10)
	n.AddFlow("a", []LinkID{l}, 100, 0)
	n.AddFlow("b", []LinkID{l}, 100, 0)
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FlowDone[0]-20) > 1e-6 || math.Abs(res.FlowDone[1]-20) > 1e-6 {
		t.Errorf("done = %v, want both 20", res.FlowDone)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	// A 50-byte and a 150-byte flow share a 10 B/s link. Phase 1: both at
	// 5 B/s until the short one finishes at t=10. Phase 2: long flow gets
	// 10 B/s for its remaining 100 bytes -> done at t=20.
	n := New()
	l, _ := n.AddLink("pipe", 10)
	n.AddFlow("short", []LinkID{l}, 50, 0)
	n.AddFlow("long", []LinkID{l}, 150, 0)
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FlowDone[0]-10) > 1e-6 {
		t.Errorf("short done %v, want 10", res.FlowDone[0])
	}
	if math.Abs(res.FlowDone[1]-20) > 1e-6 {
		t.Errorf("long done %v, want 20", res.FlowDone[1])
	}
}

func TestMaxMinBottleneckIsolation(t *testing.T) {
	// Flow A crosses links L1(10) and L2(100); flow B crosses only L2.
	// Max-min: A is bottlenecked at 10 on L1; B then gets 90 on L2.
	n := New()
	l1, _ := n.AddLink("l1", 10)
	l2, _ := n.AddLink("l2", 100)
	n.AddFlow("a", []LinkID{l1, l2}, 100, 0) // 10 B/s -> 10s
	n.AddFlow("b", []LinkID{l2}, 900, 0)     // 90 B/s -> 10s
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FlowDone[0]-10) > 1e-6 {
		t.Errorf("a done %v, want 10", res.FlowDone[0])
	}
	if math.Abs(res.FlowDone[1]-10) > 1e-6 {
		t.Errorf("b done %v, want 10 (90 B/s share)", res.FlowDone[1])
	}
}

func TestStaggeredStarts(t *testing.T) {
	// Second flow arrives mid-way: first flow runs alone at 10 B/s for 5s
	// (50 bytes), then both share at 5 B/s.
	n := New()
	l, _ := n.AddLink("pipe", 10)
	n.AddFlow("early", []LinkID{l}, 100, 0)
	n.AddFlow("late", []LinkID{l}, 50, 5)
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	// early: 50 bytes left at t=5, shares 5 B/s until late finishes at
	// t=15 (50 bytes at 5 B/s), then 0 bytes left? early has 50-50=0 at
	// t=15 too: both end at 15.
	if math.Abs(res.FlowDone[0]-15) > 1e-6 {
		t.Errorf("early done %v, want 15", res.FlowDone[0])
	}
	if math.Abs(res.FlowDone[1]-15) > 1e-6 {
		t.Errorf("late done %v, want 15", res.FlowDone[1])
	}
}

func TestZeroByteAndPathlessFlows(t *testing.T) {
	n := New()
	l, _ := n.AddLink("pipe", 10)
	n.AddFlow("zero", []LinkID{l}, 0, 3)
	n.AddFlow("local", nil, 1e9, 2) // HBM hit: instant
	n.AddFlow("real", []LinkID{l}, 10, 0)
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowDone[0] != 3 || res.FlowDone[1] != 2 {
		t.Errorf("trivial flows done at %v", res.FlowDone[:2])
	}
	if math.Abs(res.FlowDone[2]-1) > 1e-6 {
		t.Errorf("real done %v", res.FlowDone[2])
	}
}

func TestIdleGapBetweenStarts(t *testing.T) {
	n := New()
	l, _ := n.AddLink("pipe", 10)
	n.AddFlow("a", []LinkID{l}, 10, 0)  // done at 1
	n.AddFlow("b", []LinkID{l}, 10, 50) // starts at 50, done at 51
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FlowDone[1]-51) > 1e-6 {
		t.Errorf("b done %v, want 51", res.FlowDone[1])
	}
	if math.Abs(res.Makespan-51) > 1e-6 {
		t.Errorf("makespan %v", res.Makespan)
	}
}

func TestErrors(t *testing.T) {
	n := New()
	if _, err := n.AddLink("bad", 0); err == nil {
		t.Error("zero-rate link accepted")
	}
	if _, err := n.AddLink("bad", math.NaN()); err == nil {
		t.Error("NaN link accepted")
	}
	l, _ := n.AddLink("ok", 5)
	if _, err := n.AddFlow("f", []LinkID{l}, -1, 0); err == nil {
		t.Error("negative bytes accepted")
	}
	if _, err := n.AddFlow("f", []LinkID{l}, 1, -1); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := n.AddFlow("f", []LinkID{99}, 1, 0); err == nil {
		t.Error("unknown link accepted")
	}
	n.AddFlow("f", []LinkID{l}, 1, 0)
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err == nil {
		t.Error("second Run accepted")
	}
}

func TestConservationProperty(t *testing.T) {
	// Random networks: total bytes on each link equal the sum of the
	// sizes of flows crossing it; makespan >= max over links of
	// carried/capacity (a link cannot exceed its rate on average).
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := New()
		nl := 2 + r.Intn(5)
		links := make([]LinkID, nl)
		rates := make([]float64, nl)
		for i := range links {
			rates[i] = float64(1 + r.Intn(50))
			links[i], _ = n.AddLink("l", rates[i])
		}
		nf := 1 + r.Intn(8)
		expected := make([]float64, nl)
		for f := 0; f < nf; f++ {
			plen := 1 + r.Intn(nl)
			perm := r.Perm(nl)[:plen]
			path := make([]LinkID, plen)
			for i, p := range perm {
				path[i] = links[p]
			}
			bytes := float64(1 + r.Intn(1000))
			for _, p := range perm {
				expected[p] += bytes
			}
			n.AddFlow("f", path, bytes, float64(r.Intn(3)))
		}
		res, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range links {
			if math.Abs(res.LinkBytes[i]-expected[i]) > 1e-5*(1+expected[i]) {
				t.Fatalf("trial %d: link %d carried %.2f, want %.2f",
					trial, i, res.LinkBytes[i], expected[i])
			}
			if minTime := expected[i] / rates[i]; res.Makespan < minTime-1e-6 {
				t.Fatalf("trial %d: makespan %.3f beats link lower bound %.3f",
					trial, res.Makespan, minTime)
			}
		}
	}
}

func TestNamesAndCounts(t *testing.T) {
	n := New()
	l, _ := n.AddLink("qpi", 5)
	if n.LinkName(l) != "qpi" || n.NumLinks() != 1 {
		t.Error("link bookkeeping broken")
	}
	n.AddFlow("f", []LinkID{l}, 1, 0)
	if n.NumFlows() != 1 {
		t.Error("flow bookkeeping broken")
	}
}

func TestInitialRates(t *testing.T) {
	n := New()
	l1, _ := n.AddLink("l1", 10)
	l2, _ := n.AddLink("l2", 100)
	n.AddFlow("a", []LinkID{l1, l2}, 100, 0)
	n.AddFlow("b", []LinkID{l2}, 900, 5) // start time ignored by the probe
	n.AddFlow("local", nil, 10, 0)
	rates := n.InitialRates()
	if math.Abs(rates[0]-10) > 1e-9 {
		t.Errorf("flow a rate %v, want 10", rates[0])
	}
	if math.Abs(rates[1]-90) > 1e-9 {
		t.Errorf("flow b rate %v, want 90", rates[1])
	}
	if !math.IsInf(rates[2], 1) {
		t.Errorf("pathless flow rate %v, want +Inf", rates[2])
	}
	// Probe must not disturb a subsequent Run.
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FlowDone[0]-10) > 1e-6 {
		t.Errorf("run after probe: flow a done %v", res.FlowDone[0])
	}
}
