// Package simnet is a flow-level discrete-event network simulator: named
// links with byte/second capacities, flows that follow fixed link paths,
// and progressive-filling (max-min fair) bandwidth allocation recomputed at
// every flow arrival/completion. It plays the role of the real fabric in
// Moment's runtime: where flownet *predicts* epoch I/O time by max-flow,
// simnet *measures* it by simulating the actual transfers — the two
// quantities Fig 13 compares.
//
// The simulator is deterministic and single-threaded per Run; build one Net
// per goroutine for parallel experiments.
package simnet

import (
	"fmt"
	"math"
	"sort"

	"moment/internal/obs"
)

// LinkID names a link in the network.
type LinkID int

// FlowID names a flow.
type FlowID int

type link struct {
	name string
	rate float64 // bytes/second; +Inf allowed
}

type flow struct {
	name    string
	path    []LinkID
	bytes   float64
	start   float64
	done    float64 // completion time; NaN until finished
	remain  float64
	rate    float64 // current allocated rate
	started bool
}

// Net is a link-capacity network with flows.
type Net struct {
	links []link
	flows []flow
	ran   bool
	obsrv *obs.Observer // nil = no instrumentation
}

// SetObserver attaches an observer so Run reports a span plus per-link
// utilization gauges. Nil detaches.
func (n *Net) SetObserver(o *obs.Observer) { n.obsrv = o }

// New returns an empty network.
func New() *Net { return &Net{} }

// AddLink registers a link with the given capacity (bytes/second).
func (n *Net) AddLink(name string, rate float64) (LinkID, error) {
	if rate <= 0 || math.IsNaN(rate) {
		return 0, fmt.Errorf("simnet: link %q has invalid rate %v", name, rate)
	}
	n.links = append(n.links, link{name: name, rate: rate})
	return LinkID(len(n.links) - 1), nil
}

// AddFlow registers a transfer of the given bytes along path, starting at
// time start (seconds). An empty path means the flow completes instantly at
// start (purely local transfer, e.g. an HBM cache hit).
func (n *Net) AddFlow(name string, path []LinkID, bytes, start float64) (FlowID, error) {
	if bytes < 0 || math.IsNaN(bytes) {
		return 0, fmt.Errorf("simnet: flow %q has invalid size %v", name, bytes)
	}
	if start < 0 || math.IsNaN(start) {
		return 0, fmt.Errorf("simnet: flow %q has invalid start %v", name, start)
	}
	for _, l := range path {
		if l < 0 || int(l) >= len(n.links) {
			return 0, fmt.Errorf("simnet: flow %q references unknown link %d", name, l)
		}
	}
	n.flows = append(n.flows, flow{
		name:   name,
		path:   append([]LinkID(nil), path...),
		bytes:  bytes,
		start:  start,
		remain: bytes,
		done:   math.NaN(),
	})
	return FlowID(len(n.flows) - 1), nil
}

// maxMinRates computes progressive-filling fair rates for the active flows.
// active maps flow index -> true. Rates are written into n.flows[i].rate.
func (n *Net) maxMinRates(active []int) {
	for _, fi := range active {
		n.flows[fi].rate = 0
	}
	residual := make([]float64, len(n.links))
	for i, l := range n.links {
		residual[i] = l.rate
	}
	countOn := make([]int, len(n.links))
	frozen := make([]bool, len(n.flows))
	remaining := 0
	for _, fi := range active {
		if len(n.flows[fi].path) == 0 {
			// Pathless flows are infinitely fast; handled by caller.
			frozen[fi] = true
			n.flows[fi].rate = math.Inf(1)
			continue
		}
		remaining++
		for _, l := range n.flows[fi].path {
			countOn[l]++
		}
	}
	for remaining > 0 {
		// Find the tightest link.
		bottleneck := -1
		share := math.Inf(1)
		for li := range n.links {
			if countOn[li] == 0 {
				continue
			}
			s := residual[li] / float64(countOn[li])
			if s < share {
				share = s
				bottleneck = li
			}
		}
		if bottleneck == -1 {
			// Remaining flows traverse only infinite links.
			for _, fi := range active {
				if !frozen[fi] {
					n.flows[fi].rate = math.Inf(1)
					frozen[fi] = true
					remaining--
				}
			}
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck at the share.
		for _, fi := range active {
			if frozen[fi] {
				continue
			}
			crosses := false
			for _, l := range n.flows[fi].path {
				if l == LinkID(bottleneck) {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			n.flows[fi].rate = share
			frozen[fi] = true
			remaining--
			for _, l := range n.flows[fi].path {
				residual[l] -= share
				countOn[l]--
				if residual[l] < 0 {
					residual[l] = 0
				}
			}
		}
	}
}

// Result reports a completed simulation.
type Result struct {
	// Makespan is the time the last flow finishes.
	Makespan float64
	// FlowDone holds each flow's completion time.
	FlowDone []float64
	// LinkBytes holds the total bytes carried per link.
	LinkBytes []float64
}

// Run simulates to completion and returns per-flow completion times,
// makespan, and per-link carried bytes. Run may be called once per Net.
func (n *Net) Run() (*Result, error) {
	if n.ran {
		return nil, fmt.Errorf("simnet: Run called twice")
	}
	n.ran = true
	sp := n.obsrv.Begin("simnet.run")
	sp.SetInt("links", len(n.links))
	sp.SetInt("flows", len(n.flows))
	defer sp.End()
	linkBytes := make([]float64, len(n.links))

	// Event times: flow starts (sorted) and completions (computed).
	now := 0.0
	pending := make([]int, 0, len(n.flows)) // not yet started, sorted by start
	for i := range n.flows {
		if n.flows[i].bytes == 0 {
			n.flows[i].done = n.flows[i].start
			continue
		}
		if len(n.flows[i].path) == 0 {
			n.flows[i].done = n.flows[i].start
			continue
		}
		pending = append(pending, i)
	}
	sort.Slice(pending, func(a, b int) bool {
		return n.flows[pending[a]].start < n.flows[pending[b]].start
	})
	var active []int

	for len(pending) > 0 || len(active) > 0 {
		// Admit flows that have started.
		for len(pending) > 0 && n.flows[pending[0]].start <= now+1e-12 {
			fi := pending[0]
			pending = pending[1:]
			n.flows[fi].started = true
			active = append(active, fi)
		}
		if len(active) == 0 {
			// Jump to the next start.
			now = n.flows[pending[0]].start
			continue
		}
		n.maxMinRates(active)
		// Next event: earliest completion among active, or next start.
		nextEvent := math.Inf(1)
		for _, fi := range active {
			f := &n.flows[fi]
			if f.rate <= 0 {
				continue
			}
			t := f.remain / f.rate
			if t < nextEvent {
				nextEvent = t
			}
		}
		if len(pending) > 0 {
			if dt := n.flows[pending[0]].start - now; dt < nextEvent {
				nextEvent = dt
			}
		}
		if math.IsInf(nextEvent, 1) {
			return nil, fmt.Errorf("simnet: %d flows starved (zero rate) at t=%.3f", len(active), now)
		}
		if nextEvent < 0 {
			nextEvent = 0
		}
		// Advance time, draining remain and accounting link bytes.
		for _, fi := range active {
			f := &n.flows[fi]
			moved := f.rate * nextEvent
			if math.IsInf(moved, 1) || moved > f.remain {
				moved = f.remain
			}
			f.remain -= moved
			for _, l := range f.path {
				linkBytes[l] += moved
			}
		}
		now += nextEvent
		// Retire completed flows.
		out := active[:0]
		for _, fi := range active {
			f := &n.flows[fi]
			if f.remain <= 1e-6 {
				f.done = now
				f.remain = 0
			} else {
				out = append(out, fi)
			}
		}
		active = out
	}

	res := &Result{Makespan: 0, FlowDone: make([]float64, len(n.flows)), LinkBytes: linkBytes}
	for i := range n.flows {
		res.FlowDone[i] = n.flows[i].done
		if n.flows[i].done > res.Makespan {
			res.Makespan = n.flows[i].done
		}
	}
	if o := n.obsrv; o != nil {
		sp.SetFloat("makespan_seconds", res.Makespan)
		o.Gauge("simnet_makespan_seconds").Set(res.Makespan)
		for li, l := range n.links {
			capBytes := l.rate * res.Makespan
			util := 0.0
			if capBytes > 0 && !math.IsInf(capBytes, 1) {
				util = linkBytes[li] / capBytes
			}
			o.Gauge("simnet_link_utilization", obs.L("link", l.name)).Set(util)
		}
	}
	return res, nil
}

// LinkName returns the registered name of a link.
func (n *Net) LinkName(l LinkID) string { return n.links[l].name }

// NumLinks returns the number of links.
func (n *Net) NumLinks() int { return len(n.links) }

// NumFlows returns the number of flows.
func (n *Net) NumFlows() int { return len(n.flows) }

// InitialRates returns the max-min fair rate each flow would receive if
// every flow were active simultaneously (start times ignored). Used as a
// fairness probe: the relative rates are the equilibrium service shares of
// the network, without running a full simulation. Pathless flows report
// +Inf. The Net is left unmodified and can still be Run.
func (n *Net) InitialRates() []float64 {
	active := make([]int, 0, len(n.flows))
	for i := range n.flows {
		active = append(active, i)
	}
	saved := make([]float64, len(n.flows))
	for i := range n.flows {
		saved[i] = n.flows[i].rate
	}
	n.maxMinRates(active)
	out := make([]float64, len(n.flows))
	for i := range n.flows {
		out[i] = n.flows[i].rate
		n.flows[i].rate = saved[i]
	}
	return out
}
