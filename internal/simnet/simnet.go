// Package simnet is a flow-level discrete-event network simulator: named
// links with byte/second capacities, flows that follow fixed link paths,
// and progressive-filling (max-min fair) bandwidth allocation recomputed at
// every flow arrival/completion. It plays the role of the real fabric in
// Moment's runtime: where flownet *predicts* epoch I/O time by max-flow,
// simnet *measures* it by simulating the actual transfers — the two
// quantities Fig 13 compares.
//
// The simulator is deterministic and single-threaded per Run; build one Net
// per goroutine for parallel experiments.
package simnet

import (
	"fmt"
	"math"
	"sort"

	"moment/internal/obs"
)

// LinkID names a link in the network.
type LinkID int

// FlowID names a flow.
type FlowID int

type link struct {
	name string
	rate float64 // bytes/second; +Inf allowed
}

type flow struct {
	name    string
	path    []LinkID
	bytes   float64
	start   float64
	done    float64 // completion time; NaN until finished
	remain  float64
	rate    float64 // current allocated rate
	started bool
}

// Net is a link-capacity network with flows.
type Net struct {
	links  []link
	flows  []flow
	ran    bool
	obsrv  *obs.Observer // nil = no instrumentation
	faults FaultLookup   // nil = perfect fabric
}

// SetObserver attaches an observer so Run reports a span plus per-link
// utilization gauges. Nil detaches.
func (n *Net) SetObserver(o *obs.Observer) { n.obsrv = o }

// FaultLookup is the fault-injector view the simulator queries during the
// event loop: a piecewise-constant capacity factor per named link, and the
// next time any factor changes (so rate recomputation lands exactly on
// fault boundaries). faults.Injector implements it; the interface keeps
// simnet free of a package dependency.
type FaultLookup interface {
	// LinkFactor returns the capacity fraction of the named link at time
	// t (1 = healthy, 0 = dead).
	LinkFactor(name string, t float64) float64
	// NextChange returns the earliest time strictly after t at which any
	// factor may change, or +Inf.
	NextChange(t float64) float64
}

// SetFaults attaches a fault injector whose link factors scale capacities
// during Run. Nil detaches. Must be set before Run.
func (n *Net) SetFaults(f FaultLookup) { n.faults = f }

// effRate is a link's capacity at time now under the attached faults.
func (n *Net) effRate(li int, now float64) float64 {
	r := n.links[li].rate
	if n.faults != nil {
		r *= n.faults.LinkFactor(n.links[li].name, now)
	}
	return r
}

// New returns an empty network.
func New() *Net { return &Net{} }

// AddLink registers a link with the given capacity (bytes/second).
func (n *Net) AddLink(name string, rate float64) (LinkID, error) {
	if rate <= 0 || math.IsNaN(rate) {
		return 0, fmt.Errorf("simnet: link %q has invalid rate %v", name, rate)
	}
	n.links = append(n.links, link{name: name, rate: rate})
	return LinkID(len(n.links) - 1), nil
}

// AddFlow registers a transfer of the given bytes along path, starting at
// time start (seconds). An empty path means the flow completes instantly at
// start (purely local transfer, e.g. an HBM cache hit).
func (n *Net) AddFlow(name string, path []LinkID, bytes, start float64) (FlowID, error) {
	if bytes < 0 || math.IsNaN(bytes) {
		return 0, fmt.Errorf("simnet: flow %q has invalid size %v", name, bytes)
	}
	if start < 0 || math.IsNaN(start) {
		return 0, fmt.Errorf("simnet: flow %q has invalid start %v", name, start)
	}
	for _, l := range path {
		if l < 0 || int(l) >= len(n.links) {
			return 0, fmt.Errorf("simnet: flow %q references unknown link %d", name, l)
		}
	}
	n.flows = append(n.flows, flow{
		name:   name,
		path:   append([]LinkID(nil), path...),
		bytes:  bytes,
		start:  start,
		remain: bytes,
		done:   math.NaN(),
	})
	return FlowID(len(n.flows) - 1), nil
}

// maxMinRates computes progressive-filling fair rates for the active flows
// under the link capacities in effect at time now. active maps flow index
// -> true. Rates are written into n.flows[i].rate.
func (n *Net) maxMinRates(active []int, now float64) {
	for _, fi := range active {
		n.flows[fi].rate = 0
	}
	residual := make([]float64, len(n.links))
	for i := range n.links {
		residual[i] = n.effRate(i, now)
	}
	countOn := make([]int, len(n.links))
	frozen := make([]bool, len(n.flows))
	remaining := 0
	for _, fi := range active {
		if len(n.flows[fi].path) == 0 {
			// Pathless flows are infinitely fast; handled by caller.
			frozen[fi] = true
			n.flows[fi].rate = math.Inf(1)
			continue
		}
		remaining++
		for _, l := range n.flows[fi].path {
			countOn[l]++
		}
	}
	for remaining > 0 {
		// Find the tightest link.
		bottleneck := -1
		share := math.Inf(1)
		for li := range n.links {
			if countOn[li] == 0 {
				continue
			}
			s := residual[li] / float64(countOn[li])
			if s < share {
				share = s
				bottleneck = li
			}
		}
		if bottleneck == -1 {
			// Remaining flows traverse only infinite links.
			for _, fi := range active {
				if !frozen[fi] {
					n.flows[fi].rate = math.Inf(1)
					frozen[fi] = true
					remaining--
				}
			}
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck at the share.
		for _, fi := range active {
			if frozen[fi] {
				continue
			}
			crosses := false
			for _, l := range n.flows[fi].path {
				if l == LinkID(bottleneck) {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			n.flows[fi].rate = share
			frozen[fi] = true
			remaining--
			for _, l := range n.flows[fi].path {
				residual[l] -= share
				countOn[l]--
				if residual[l] < 0 {
					residual[l] = 0
				}
			}
		}
	}
}

// Result reports a completed (or truncated, see RunUntil) simulation.
type Result struct {
	// Makespan is the time the last flow finishes — or, for a truncated
	// run with work left, the stop time.
	Makespan float64
	// FlowDone holds each flow's completion time (NaN if unfinished).
	FlowDone []float64
	// LinkBytes holds the total bytes carried per link.
	LinkBytes []float64
	// FlowRemain holds each flow's undelivered bytes (all zero when the
	// simulation ran to completion).
	FlowRemain []float64
	// RateSolves counts max-min fair-rate recomputations the event loop
	// performed; RateReuses counts events where the previous allocation was
	// provably still valid (active set unchanged and no link's effective
	// capacity moved — e.g. a fault boundary that only touched GPU or SSD
	// factors) and the solve was skipped.
	RateSolves int
	RateReuses int
}

// Run simulates to completion and returns per-flow completion times,
// makespan, and per-link carried bytes. Run may be called once per Net.
func (n *Net) Run() (*Result, error) { return n.runUntil(math.Inf(1)) }

// RunUntil simulates up to the given stop time and returns the partial
// state: flows still in flight (or never started) report their
// undelivered bytes in FlowRemain and a NaN completion time, and Makespan
// is the stop time when work remains. Used to freeze the fabric at a
// fault boundary so a degraded continuation can be re-planned. Like Run,
// it may be called once per Net.
func (n *Net) RunUntil(stop float64) (*Result, error) {
	if stop < 0 || math.IsNaN(stop) {
		return nil, fmt.Errorf("simnet: invalid stop time %v", stop)
	}
	return n.runUntil(stop)
}

func (n *Net) runUntil(stop float64) (*Result, error) {
	if n.ran {
		return nil, fmt.Errorf("simnet: Run called twice")
	}
	n.ran = true
	sp := n.obsrv.Begin("simnet.run")
	sp.SetInt("links", len(n.links))
	sp.SetInt("flows", len(n.flows))
	defer sp.End()
	linkBytes := make([]float64, len(n.links))

	// Event times: flow starts (sorted) and completions (computed).
	now := 0.0
	pending := make([]int, 0, len(n.flows)) // not yet started, sorted by start
	for i := range n.flows {
		if n.flows[i].bytes == 0 || len(n.flows[i].path) == 0 {
			// Zero-byte or pathless (purely local) flows complete
			// instantly at their start time.
			n.flows[i].done = n.flows[i].start
			n.flows[i].remain = 0
			continue
		}
		pending = append(pending, i)
	}
	sort.Slice(pending, func(a, b int) bool {
		return n.flows[pending[a]].start < n.flows[pending[b]].start
	})
	var active []int

	// Incremental flow-delta evaluation: the fair-rate allocation only
	// depends on the active set and the links' effective capacities. Both
	// are piecewise-constant between events, so an event that changes
	// neither — typically a fault boundary whose factors touch GPUs or
	// SSDs but no link — reuses the previous allocation instead of
	// re-running progressive filling.
	rateSolves, rateReuses := 0, 0
	ratesValid := false
	lastEff := make([]float64, len(n.links))

	for len(pending) > 0 || len(active) > 0 {
		if now >= stop-1e-12 {
			break
		}
		// Admit flows that have started.
		for len(pending) > 0 && n.flows[pending[0]].start <= now+1e-12 {
			fi := pending[0]
			pending = pending[1:]
			n.flows[fi].started = true
			active = append(active, fi)
			ratesValid = false
		}
		if len(active) == 0 {
			// Jump to the next start (or the stop time, if sooner).
			next := n.flows[pending[0]].start
			if next >= stop {
				now = stop
				break
			}
			now = next
			continue
		}
		if ratesValid {
			for li := range n.links {
				if n.effRate(li, now) != lastEff[li] {
					ratesValid = false
					break
				}
			}
		}
		if ratesValid {
			rateReuses++
		} else {
			n.maxMinRates(active, now)
			for li := range n.links {
				lastEff[li] = n.effRate(li, now)
			}
			ratesValid = true
			rateSolves++
		}
		// Next event: earliest completion among active, next start, next
		// fault boundary, or the stop time.
		nextEvent := math.Inf(1)
		for _, fi := range active {
			f := &n.flows[fi]
			if f.rate <= 0 {
				continue
			}
			t := f.remain / f.rate
			if t < nextEvent {
				nextEvent = t
			}
		}
		if len(pending) > 0 {
			if dt := n.flows[pending[0]].start - now; dt < nextEvent {
				nextEvent = dt
			}
		}
		if n.faults != nil {
			if dt := n.faults.NextChange(now) - now; dt < nextEvent {
				nextEvent = dt
			}
		}
		if dt := stop - now; dt < nextEvent {
			nextEvent = dt
		}
		if math.IsInf(nextEvent, 1) {
			return nil, fmt.Errorf("simnet: %d flows starved (zero rate) at t=%.3f", len(active), now)
		}
		if nextEvent < 0 {
			nextEvent = 0
		}
		// Advance time, draining remain and accounting link bytes.
		for _, fi := range active {
			f := &n.flows[fi]
			moved := f.rate * nextEvent
			if math.IsInf(moved, 1) || moved > f.remain {
				moved = f.remain
			}
			f.remain -= moved
			for _, l := range f.path {
				linkBytes[l] += moved
			}
		}
		now += nextEvent
		// Retire completed flows.
		out := active[:0]
		for _, fi := range active {
			f := &n.flows[fi]
			if f.remain <= 1e-6 {
				f.done = now
				f.remain = 0
				ratesValid = false
			} else {
				out = append(out, fi)
			}
		}
		active = out
	}

	res := &Result{
		Makespan:   0,
		FlowDone:   make([]float64, len(n.flows)),
		LinkBytes:  linkBytes,
		FlowRemain: make([]float64, len(n.flows)),
	}
	left := false
	for i := range n.flows {
		res.FlowDone[i] = n.flows[i].done
		res.FlowRemain[i] = n.flows[i].remain
		if n.flows[i].remain > 0 {
			left = true
		}
		if n.flows[i].done > res.Makespan {
			res.Makespan = n.flows[i].done
		}
	}
	if left && now > res.Makespan {
		// Truncated with work in flight: the run "ends" at the stop time.
		res.Makespan = now
	}
	res.RateSolves = rateSolves
	res.RateReuses = rateReuses
	if o := n.obsrv; o != nil {
		sp.SetFloat("makespan_seconds", res.Makespan)
		sp.SetInt("rate_solves", rateSolves)
		sp.SetInt("rate_reuses", rateReuses)
		o.Counter("sim_delta_rate_solves_total").Add(float64(rateSolves))
		o.Counter("sim_delta_rate_reuses_total").Add(float64(rateReuses))
		o.Gauge("simnet_makespan_seconds").Set(res.Makespan)
		for li, l := range n.links {
			capBytes := l.rate * res.Makespan
			util := 0.0
			if capBytes > 0 && !math.IsInf(capBytes, 1) {
				util = linkBytes[li] / capBytes
			}
			o.Gauge("simnet_link_utilization", obs.L("link", l.name)).Set(util)
		}
	}
	return res, nil
}

// ClearFlows drops every flow but keeps the links, observer, and fault
// injector, and re-arms the net so it can Run again. Repeated epoch
// simulations over the same fabric reuse one Net instead of rebuilding
// links from the topology each time.
func (n *Net) ClearFlows() {
	n.flows = n.flows[:0]
	n.ran = false
}

// LinkName returns the registered name of a link.
func (n *Net) LinkName(l LinkID) string { return n.links[l].name }

// NumLinks returns the number of links.
func (n *Net) NumLinks() int { return len(n.links) }

// NumFlows returns the number of flows.
func (n *Net) NumFlows() int { return len(n.flows) }

// InitialRates returns the max-min fair rate each flow would receive if
// every flow were active simultaneously (start times ignored). Used as a
// fairness probe: the relative rates are the equilibrium service shares of
// the network, without running a full simulation. Pathless flows report
// +Inf. The Net is left unmodified and can still be Run.
func (n *Net) InitialRates() []float64 {
	active := make([]int, 0, len(n.flows))
	for i := range n.flows {
		active = append(active, i)
	}
	saved := make([]float64, len(n.flows))
	for i := range n.flows {
		saved[i] = n.flows[i].rate
	}
	n.maxMinRates(active, 0)
	out := make([]float64, len(n.flows))
	for i := range n.flows {
		out[i] = n.flows[i].rate
		n.flows[i].rate = saved[i]
	}
	return out
}
