package simnet

import (
	"math"
	"strings"
	"testing"

	"moment/internal/faults"
)

func injector(t *testing.T, s *faults.Schedule) *faults.Injector {
	t.Helper()
	in, err := faults.NewInjector(s)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestThrottleMidFlow(t *testing.T) {
	// 1000 bytes at 100 B/s; link drops to 50% at t=5. First 5 s deliver
	// 500 bytes, the rest takes 500/50 = 10 s: makespan 15.
	n := New()
	l, _ := n.AddLink("trunk", 100)
	n.AddFlow("f", []LinkID{l}, 1000, 0)
	n.SetFaults(injector(t, &faults.Schedule{Events: []faults.Event{
		faults.Downtrain("trunk", 5, 0.5, 0),
	}}))
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-15) > 1e-6 {
		t.Errorf("makespan %v, want 15", res.Makespan)
	}
	if math.Abs(res.LinkBytes[l]-1000) > 1e-6 {
		t.Errorf("link bytes %v, want 1000", res.LinkBytes[l])
	}
}

func TestTransientThrottleRecovers(t *testing.T) {
	// Throttle to 10% for 4 s in the middle: 2 s at 100 (200 bytes),
	// 4 s at 10 (40 bytes), rest 760 bytes at 100 → 7.6 s. Total 13.6.
	n := New()
	l, _ := n.AddLink("trunk", 100)
	n.AddFlow("f", []LinkID{l}, 1000, 0)
	n.SetFaults(injector(t, &faults.Schedule{Events: []faults.Event{
		faults.Downtrain("trunk", 2, 0.1, 4),
	}}))
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-13.6) > 1e-6 {
		t.Errorf("makespan %v, want 13.6", res.Makespan)
	}
}

func TestSSDLinkNameSeesDeviceFaults(t *testing.T) {
	// A link named "ssd1" picks up SSD 1 throttle events without an
	// explicit downtrain clause — the fabric's naming convention is the
	// contract between trainsim and the injector.
	n := New()
	l, _ := n.AddLink("ssd1", 100)
	n.AddFlow("f", []LinkID{l}, 1000, 0)
	n.SetFaults(injector(t, &faults.Schedule{Events: []faults.Event{
		faults.ThrottleSSD(1, 0, 0.5, 0),
	}}))
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-20) > 1e-6 {
		t.Errorf("makespan %v, want 20", res.Makespan)
	}
}

func TestRunUntilFreezesPartialState(t *testing.T) {
	n := New()
	l, _ := n.AddLink("trunk", 100)
	f1, _ := n.AddFlow("f1", []LinkID{l}, 1000, 0)
	f2, _ := n.AddFlow("late", []LinkID{l}, 50, 9)
	res, err := n.RunUntil(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FlowRemain[f1]-500) > 1e-6 {
		t.Errorf("f1 remain %v, want 500", res.FlowRemain[f1])
	}
	if math.Abs(res.FlowRemain[f2]-50) > 1e-6 {
		t.Errorf("unstarted flow remain %v, want its full size", res.FlowRemain[f2])
	}
	if !math.IsNaN(res.FlowDone[f1]) {
		t.Errorf("unfinished flow done %v, want NaN", res.FlowDone[f1])
	}
	if math.Abs(res.Makespan-5) > 1e-9 {
		t.Errorf("truncated makespan %v, want 5", res.Makespan)
	}
	if math.Abs(res.LinkBytes[l]-500) > 1e-6 {
		t.Errorf("link bytes %v, want 500", res.LinkBytes[l])
	}
	// The Net is consumed, like Run.
	if _, err := n.Run(); err == nil {
		t.Error("second run after RunUntil should fail")
	}
}

func TestRunUntilPastCompletionMatchesRun(t *testing.T) {
	build := func() *Net {
		n := New()
		l, _ := n.AddLink("trunk", 100)
		n.AddFlow("f", []LinkID{l}, 1000, 0)
		return n
	}
	full, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := build().RunUntil(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if full.Makespan != trunc.Makespan || trunc.FlowRemain[0] != 0 {
		t.Errorf("RunUntil past completion: %v vs %v (remain %v)",
			trunc.Makespan, full.Makespan, trunc.FlowRemain[0])
	}
}

func TestDeadLinkStarves(t *testing.T) {
	// A fail-stop with no re-route leaves the flow starved once no more
	// fault boundaries remain — the caller (trainsim) is responsible for
	// degrading gracefully before this point.
	n := New()
	l, _ := n.AddLink("ssd0", 100)
	n.AddFlow("f", []LinkID{l}, 1000, 0)
	n.SetFaults(injector(t, &faults.Schedule{Events: []faults.Event{
		faults.Kill(0, 2),
	}}))
	_, err := n.Run()
	if err == nil || !strings.Contains(err.Error(), "starved") {
		t.Fatalf("want starvation error, got %v", err)
	}
}

func TestEmptyScheduleMatchesNoInjector(t *testing.T) {
	build := func(in *faults.Injector) (*Net, []LinkID) {
		n := New()
		a, _ := n.AddLink("a", 10)
		b, _ := n.AddLink("b", 7)
		n.AddFlow("f1", []LinkID{a, b}, 100, 0)
		n.AddFlow("f2", []LinkID{b}, 50, 3)
		if in != nil {
			n.SetFaults(in)
		}
		return n, []LinkID{a, b}
	}
	plain, links := build(nil)
	r1, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	faulty, _ := build(injector(t, &faults.Schedule{}))
	r2, err := faulty.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Errorf("makespan drifted: %v vs %v", r1.Makespan, r2.Makespan)
	}
	for _, l := range links {
		if r1.LinkBytes[l] != r2.LinkBytes[l] {
			t.Errorf("link %d bytes drifted: %v vs %v", l, r1.LinkBytes[l], r2.LinkBytes[l])
		}
	}
	for i := range r1.FlowDone {
		if r1.FlowDone[i] != r2.FlowDone[i] {
			t.Errorf("flow %d done drifted: %v vs %v", i, r1.FlowDone[i], r2.FlowDone[i])
		}
	}
}
