// Package ddak implements the data-distribution-aware knapsack algorithm
// of paper §3.3: given per-vertex hotness (from pre-sampling) and per-bin
// traffic targets (from the max-flow solution), it places vertex embeddings
// across the storage hierarchy — GPU HBM caches, per-socket CPU memory,
// and NVMe SSDs — so that realized I/O traffic matches the theoretically
// optimal distribution. A hash-placement baseline is included for the
// Fig 14/15/17 comparisons.
package ddak

import (
	"fmt"
	"math"
	"sort"

	"moment/internal/obs"
)

// Tier ranks the storage hierarchy; lower is faster (paper: GPU > CPU > SSD).
type Tier int

const (
	// TierGPU is a per-GPU HBM cache bin.
	TierGPU Tier = iota
	// TierCPU is a per-socket CPU-memory cache bin.
	TierCPU
	// TierSSD is one NVMe SSD.
	TierSSD
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierGPU:
		return "gpu"
	case TierCPU:
		return "cpu"
	case TierSSD:
		return "ssd"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Bin is one placement target with a byte capacity and the traffic budget
// (bytes/epoch) the max-flow plan expects it to serve.
type Bin struct {
	Name     string
	Tier     Tier
	Capacity float64 // bytes available for embeddings
	Traffic  float64 // expected served bytes per epoch (Bin_traffic)
}

// Assignment is a complete embedding layout.
type Assignment struct {
	Bins []Bin
	// Of maps each vertex (by hotness-profile index) to a bin index.
	Of []int32
	// Used is the bytes stored per bin.
	Used []float64
	// Access is the cumulative hotness per bin (Bin_access, Eq. 2).
	Access []float64
	// Pools is the number of pooled placement decisions taken (cost model).
	Pools int
}

// Validate checks assignment invariants: every vertex placed, capacities
// respected, accounting consistent.
func (a *Assignment) Validate(bytesPerVertex float64) error {
	if len(a.Used) != len(a.Bins) || len(a.Access) != len(a.Bins) {
		return fmt.Errorf("ddak: accounting arrays mismatch bins")
	}
	used := make([]float64, len(a.Bins))
	for v, b := range a.Of {
		if b < 0 || int(b) >= len(a.Bins) {
			return fmt.Errorf("ddak: vertex %d in bin %d out of range", v, b)
		}
		used[b] += bytesPerVertex
	}
	for i := range a.Bins {
		if used[i] > a.Bins[i].Capacity*(1+1e-9)+1e-6 {
			return fmt.Errorf("ddak: bin %s over capacity: %.0f > %.0f",
				a.Bins[i].Name, used[i], a.Bins[i].Capacity)
		}
		if math.Abs(used[i]-a.Used[i]) > 1e-6+1e-9*used[i] {
			return fmt.Errorf("ddak: bin %s used mismatch: %.0f vs %.0f",
				a.Bins[i].Name, used[i], a.Used[i])
		}
	}
	return nil
}

// Self-check hooks, installed by internal/verify when self-verification is
// enabled (they stay nil otherwise). Declared here rather than imported so
// ddak does not depend on the verification subsystem.
var (
	// Check audits every Place result before it is returned.
	Check func(a *Assignment, hot []float64, bytesPerVertex float64) error
	// CheckItems audits every PlaceItems result before it is returned.
	CheckItems func(a *ItemAssignment, items []Item) error
)

// Place runs DDAK. Vertices are sorted by descending hotness and placed
// poolN at a time (the paper pools n=100 decisions to bound planning cost);
// each pool goes to the bin with the minimum filling priority
//
//	Bin_priority = (Bin_access / Bin_traffic) · (Bin_used / Bin_capacity)
//
// among bins with free space, with ties broken by the GPU > CPU > SSD
// hierarchy and then by bin order. Bins with zero traffic budget receive
// vertices only when every budgeted bin is full.
func Place(hot []float64, bytesPerVertex float64, bins []Bin, poolN int) (*Assignment, error) {
	if err := checkInputs(hot, bytesPerVertex, bins); err != nil {
		return nil, err
	}
	if poolN <= 0 {
		poolN = 100
	}
	order := sortByHotness(hot)
	a := &Assignment{
		Bins:   append([]Bin(nil), bins...),
		Of:     make([]int32, len(hot)),
		Used:   make([]float64, len(bins)),
		Access: make([]float64, len(bins)),
	}
	slots := make([]int64, len(bins)) // remaining vertex slots per bin
	for i, b := range bins {
		slots[i] = int64(b.Capacity / bytesPerVertex)
	}

	priority := func(i int) float64 {
		b := a.Bins[i]
		fill := 0.0
		if b.Capacity > 0 {
			fill = a.Used[i] / b.Capacity
		}
		if b.Traffic <= 0 {
			// Unbudgeted bin: effectively last resort.
			return math.Inf(1)
		}
		return (a.Access[i] / b.Traffic) * fill
	}

	pick := func() int {
		return pickBin(len(a.Bins),
			func(i int) bool { return slots[i] > 0 },
			priority,
			func(i int) Tier { return a.Bins[i].Tier })
	}

	cursor := 0
	for cursor < len(order) {
		bin := pick()
		if bin < 0 {
			return nil, fmt.Errorf("ddak: capacity exhausted with %d vertices left",
				len(order)-cursor)
		}
		take := int64(poolN)
		if rem := int64(len(order) - cursor); rem < take {
			take = rem
		}
		if slots[bin] < take {
			take = slots[bin]
		}
		for k := int64(0); k < take; k++ {
			v := order[cursor]
			a.Of[v] = int32(bin)
			a.Access[bin] += hot[v]
			cursor++
		}
		a.Used[bin] += float64(take) * bytesPerVertex
		slots[bin] -= take
		a.Pools++
	}
	if Check != nil {
		if err := Check(a, hot, bytesPerVertex); err != nil {
			return nil, fmt.Errorf("ddak: self-check failed: %w", err)
		}
	}
	return a, nil
}

// HashPlace is the naive uniform baseline of §3.3: vertices are assigned
// round-robin by id (a perfect hash) across all bins proportionally to
// capacity, ignoring hotness entirely.
func HashPlace(hot []float64, bytesPerVertex float64, bins []Bin) (*Assignment, error) {
	if err := checkInputs(hot, bytesPerVertex, bins); err != nil {
		return nil, err
	}
	a := &Assignment{
		Bins:   append([]Bin(nil), bins...),
		Of:     make([]int32, len(hot)),
		Used:   make([]float64, len(bins)),
		Access: make([]float64, len(bins)),
	}
	slots := make([]int64, len(bins))
	var totalSlots int64
	for i, b := range bins {
		slots[i] = int64(b.Capacity / bytesPerVertex)
		totalSlots += slots[i]
	}
	// Weighted round-robin: bin i receives every k-th vertex where k
	// tracks its capacity share, approximated by largest-remainder.
	credits := make([]float64, len(bins))
	weights := make([]float64, len(bins))
	for i := range bins {
		weights[i] = float64(slots[i]) / float64(totalSlots)
	}
	for v := range hot {
		best := -1
		for i := range bins {
			if slots[i] <= 0 {
				continue
			}
			credits[i] += weights[i]
			if best == -1 || credits[i] > credits[best] {
				best = i
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("ddak: hash placement ran out of capacity at vertex %d", v)
		}
		credits[best] -= 1
		a.Of[v] = int32(best)
		a.Used[best] += bytesPerVertex
		a.Access[best] += hot[v]
		slots[best]--
	}
	a.Pools = len(hot)
	return a, nil
}

func checkInputs(hot []float64, bytesPerVertex float64, bins []Bin) error {
	if len(hot) == 0 {
		return fmt.Errorf("ddak: no vertices")
	}
	if bytesPerVertex <= 0 {
		return fmt.Errorf("ddak: non-positive bytes per vertex")
	}
	if len(bins) == 0 {
		return fmt.Errorf("ddak: no bins")
	}
	var slots int64
	for i, b := range bins {
		if b.Capacity < 0 || b.Traffic < 0 {
			return fmt.Errorf("ddak: bin %d (%s) has negative capacity or traffic", i, b.Name)
		}
		slots += int64(b.Capacity / bytesPerVertex)
	}
	if slots < int64(len(hot)) {
		return fmt.Errorf("ddak: %d vertex slots < %d vertices", slots, len(hot))
	}
	for v, h := range hot {
		if h < 0 || math.IsNaN(h) {
			return fmt.Errorf("ddak: bad hotness %v at vertex %d", h, v)
		}
	}
	return nil
}

func tierLess(a, b Tier) bool { return a < b }

// prioEq compares filling priorities with a relative epsilon. Priorities are
// products of accumulated float ratios, so two bins that are equal in exact
// arithmetic almost never compare == once any access or fill has built up —
// exact comparison left the documented GPU > CPU > SSD tie-break dead.
func prioEq(a, b float64) bool {
	if a == b { // covers 0==0 and Inf==Inf
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// pickBin selects the eligible bin with minimum filling priority, breaking
// near-ties (relative 1e-9) by tier (GPU > CPU > SSD) and then by bin order.
// Returns -1 when no bin is eligible.
func pickBin(n int, eligible func(int) bool, priority func(int) float64, tier func(int) Tier) int {
	best := -1
	bestP := math.Inf(1)
	for i := 0; i < n; i++ {
		if !eligible(i) {
			continue
		}
		p := priority(i)
		switch {
		case best == -1, p < bestP && !prioEq(p, bestP):
			best, bestP = i, p
		case prioEq(p, bestP) && tierLess(tier(i), tier(best)):
			// Near-tie: prefer the faster tier. Bin order needs no case —
			// ascending iteration already keeps the earliest index.
			best, bestP = i, p
		}
	}
	return best
}

func sortByHotness(hot []float64) []int32 {
	order := make([]int32, len(hot))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return hot[order[i]] > hot[order[j]]
	})
	return order
}

// ServedBytes computes, per bin, the bytes it serves during an epoch that
// fetches totalBytes of embeddings distributed according to hot:
// served_b = totalBytes · Σ_{v∈b} hot_v.
func (a *Assignment) ServedBytes(hot []float64, totalBytes float64) ([]float64, error) {
	if len(hot) != len(a.Of) {
		return nil, fmt.Errorf("ddak: hotness length %d != assignment %d", len(hot), len(a.Of))
	}
	out := make([]float64, len(a.Bins))
	for v, b := range a.Of {
		out[b] += hot[v] * totalBytes
	}
	return out, nil
}

// HitRate sums the hotness captured by bins of the given tier — e.g. the
// combined GPU-cache hit fraction of the layout.
func (a *Assignment) HitRate(tier Tier) float64 {
	total := 0.0
	for i, b := range a.Bins {
		if b.Tier == tier {
			total += a.Access[i]
		}
	}
	return total
}

// TrafficMismatch measures how far realized per-bin service is from the
// max-flow traffic plan: ½·Σ|served_b − traffic_b| / Σ traffic_b
// (total-variation distance). DDAK should score much lower than hash.
func (a *Assignment) TrafficMismatch(hot []float64, totalBytes float64) (float64, error) {
	served, err := a.ServedBytes(hot, totalBytes)
	if err != nil {
		return 0, err
	}
	sumT := 0.0
	for _, b := range a.Bins {
		sumT += b.Traffic
	}
	if sumT == 0 {
		return 0, fmt.Errorf("ddak: no traffic budget to compare against")
	}
	dist := 0.0
	for i, b := range a.Bins {
		dist += math.Abs(served[i] - b.Traffic)
	}
	return dist / (2 * sumT), nil
}

// Item is a placement unit with its own size: a single vertex for scaled
// datasets, or a rank bucket of vertices for paper-scale simulations (the
// pooling of §3.3 taken one step further so terabyte datasets fit in a
// laptop-scale planner).
type Item struct {
	Hot   float64 // expected per-epoch access mass
	Bytes float64 // embedding bytes this item occupies
}

// ItemAssignment maps items to bins with the same accounting as Assignment.
type ItemAssignment struct {
	Bins   []Bin
	Of     []int32
	Used   []float64
	Access []float64
	Pools  int
}

// ExplainAssignment records the per-bin score breakdown of an assignment on
// an explain trail: for each bin, its filled GiB and the access mass it
// absorbs. Steps carry SeqSummary so the breakdown renders with the run
// summary, after per-candidate search steps. No-op on a nil trail.
func ExplainAssignment(ex *obs.Explain, a *ItemAssignment) {
	if ex == nil || a == nil {
		return
	}
	for i, b := range a.Bins {
		ex.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "ddak", Subject: b.Name,
			Reason: "used-gib", Value: a.Used[i] / (1 << 30)})
		ex.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "ddak", Subject: b.Name,
			Reason: "access-frac", Value: a.Access[i]})
	}
}

// PlaceItems runs DDAK over variable-size items: hot-first (by access
// density), pooled poolN items per decision, minimum filling priority
// within the highest eligible tier of the GPU > CPU > SSD hierarchy.
// trafficScale converts item access mass into the byte units of
// Bin.Traffic (pass the epoch's total fetch bytes): a bin whose realized
// traffic (access·trafficScale) has reached its max-flow budget stops
// receiving items — the "traffic limits" enforcement of §3.3 — until no
// uncapped bin remains, at which point capacity alone governs.
// trafficScale <= 0 disables traffic caps.
func PlaceItems(items []Item, bins []Bin, poolN int, trafficScale float64) (*ItemAssignment, error) {
	return PlaceItemsObserved(items, bins, poolN, trafficScale, nil)
}

// PlaceItemsObserved is PlaceItems with instrumentation: a "ddak" span,
// pool-step and priority-inversion counters, and per-bin fill-ratio gauges.
// A priority inversion is a pool decision that lands on a slower tier while
// a faster-tier bin still had room — i.e. the max-flow traffic cap, not
// capacity, forced the spill. Inversion detection is only computed when an
// observer is attached, so the unobserved path pays nothing.
func PlaceItemsObserved(items []Item, bins []Bin, poolN int, trafficScale float64, o *obs.Observer) (*ItemAssignment, error) {
	if err := checkItems(items, bins); err != nil {
		return nil, err
	}
	if poolN <= 0 {
		poolN = 100
	}
	order := make([]int32, len(items))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		// Hot-first by access density (mass per byte), matching the
		// per-vertex ordering when item sizes are uniform.
		a, b := items[order[i]], items[order[j]]
		return a.Hot*b.Bytes > b.Hot*a.Bytes
	})
	a := &ItemAssignment{
		Bins:   append([]Bin(nil), bins...),
		Of:     make([]int32, len(items)),
		Used:   make([]float64, len(bins)),
		Access: make([]float64, len(bins)),
	}
	free := make([]float64, len(bins))
	for i, b := range bins {
		free[i] = b.Capacity
	}
	priority := func(i int) float64 {
		b := a.Bins[i]
		fill := 0.0
		if b.Capacity > 0 {
			fill = a.Used[i] / b.Capacity
		}
		if b.Traffic <= 0 {
			return math.Inf(1)
		}
		return (a.Access[i] / b.Traffic) * fill
	}
	capped := func(i int) bool {
		if trafficScale <= 0 {
			return false
		}
		return a.Access[i]*trafficScale >= a.Bins[i].Traffic
	}
	pickTier := func(need float64, honorCaps bool) int {
		for _, tier := range []Tier{TierGPU, TierCPU, TierSSD} {
			best := pickBin(len(a.Bins),
				func(i int) bool {
					return a.Bins[i].Tier == tier && free[i] >= need &&
						!(honorCaps && capped(i))
				},
				priority,
				func(i int) Tier { return a.Bins[i].Tier })
			if best >= 0 {
				return best
			}
		}
		return -1
	}
	sp := o.Begin("ddak")
	sp.SetInt("items", len(items))
	sp.SetInt("bins", len(bins))
	defer sp.End()
	inversions := 0
	cursor := 0
	for cursor < len(order) {
		need := items[order[cursor]].Bytes
		bin := pickTier(need, true)
		if bin < 0 {
			bin = pickTier(need, false)
		}
		if bin < 0 {
			return nil, fmt.Errorf("ddak: no bin can hold item %d (%.0f bytes)",
				order[cursor], need)
		}
		if o != nil {
			// Any faster-tier bin with room must have been traffic-capped,
			// or pickTier would have chosen it.
			for i := range a.Bins {
				if a.Bins[i].Tier < a.Bins[bin].Tier && free[i] >= need {
					inversions++
					break
				}
			}
		}
		placed := 0
		for placed < poolN && cursor < len(order) {
			it := items[order[cursor]]
			if free[bin] < it.Bytes {
				break
			}
			a.Of[order[cursor]] = int32(bin)
			a.Used[bin] += it.Bytes
			a.Access[bin] += it.Hot
			free[bin] -= it.Bytes
			cursor++
			placed++
		}
		a.Pools++
	}
	if o != nil {
		o.Counter("ddak_pool_steps_total").Add(float64(a.Pools))
		o.Counter("ddak_priority_inversions_total").Add(float64(inversions))
		for i, b := range a.Bins {
			fill := 0.0
			if b.Capacity > 0 {
				fill = a.Used[i] / b.Capacity
			}
			o.Gauge("ddak_bin_fill_ratio", obs.L("bin", b.Name)).Set(fill)
		}
		sp.SetInt("pools", a.Pools)
		sp.SetInt("inversions", inversions)
	}
	if CheckItems != nil {
		if err := CheckItems(a, items); err != nil {
			return nil, fmt.Errorf("ddak: self-check failed: %w", err)
		}
	}
	return a, nil
}

// HashPlaceItems spreads items across bins proportionally to capacity,
// ignoring hotness (the Fig 14/15 baseline at paper scale).
func HashPlaceItems(items []Item, bins []Bin) (*ItemAssignment, error) {
	if err := checkItems(items, bins); err != nil {
		return nil, err
	}
	a := &ItemAssignment{
		Bins:   append([]Bin(nil), bins...),
		Of:     make([]int32, len(items)),
		Used:   make([]float64, len(bins)),
		Access: make([]float64, len(bins)),
	}
	free := make([]float64, len(bins))
	var total float64
	for i, b := range bins {
		free[i] = b.Capacity
		total += b.Capacity
	}
	credits := make([]float64, len(bins))
	for v, it := range items {
		best := -1
		for i, b := range bins {
			if free[i] < it.Bytes {
				continue
			}
			credits[i] += b.Capacity / total
			if best == -1 || credits[i] > credits[best] {
				best = i
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("ddak: hash item placement out of capacity at item %d", v)
		}
		credits[best] -= 1
		a.Of[v] = int32(best)
		a.Used[best] += it.Bytes
		a.Access[best] += it.Hot
		free[best] -= it.Bytes
	}
	a.Pools = len(items)
	return a, nil
}

func checkItems(items []Item, bins []Bin) error {
	if len(items) == 0 {
		return fmt.Errorf("ddak: no items")
	}
	if len(bins) == 0 {
		return fmt.Errorf("ddak: no bins")
	}
	var need, have float64
	for i, it := range items {
		if it.Hot < 0 || math.IsNaN(it.Hot) || it.Bytes <= 0 {
			return fmt.Errorf("ddak: bad item %d: %+v", i, it)
		}
		need += it.Bytes
	}
	for i, b := range bins {
		if b.Capacity < 0 || b.Traffic < 0 {
			return fmt.Errorf("ddak: bin %d (%s) has negative capacity or traffic", i, b.Name)
		}
		have += b.Capacity
	}
	if have < need {
		return fmt.Errorf("ddak: total capacity %.0f < item bytes %.0f", have, need)
	}
	return nil
}

// ServedBytesItems mirrors ServedBytes for item assignments: each bin
// serves totalBytes scaled by the access mass it holds (masses need not
// sum to 1; they are normalized here).
func (a *ItemAssignment) ServedBytesItems(totalBytes float64) []float64 {
	var mass float64
	for _, m := range a.Access {
		mass += m
	}
	out := make([]float64, len(a.Bins))
	if mass == 0 {
		return out
	}
	for i, m := range a.Access {
		out[i] = m / mass * totalBytes
	}
	return out
}

// DegradeBins returns a copy of bins with the named bins failed: their
// capacity and traffic budget drop to zero, and each failed bin's budget is
// redistributed across surviving bins of the same tier in proportion to
// their own budgets (evenly when no survivor has one). It errors when a
// named bin does not exist, or when a tier loses every bin while still
// owing traffic — the caller cannot degrade gracefully past that point.
func DegradeBins(bins []Bin, dead map[string]bool) ([]Bin, error) {
	out := append([]Bin(nil), bins...)
	known := map[string]bool{}
	deadTraffic := map[Tier]float64{}
	for i := range out {
		if dead[out[i].Name] {
			known[out[i].Name] = true
			deadTraffic[out[i].Tier] += out[i].Traffic
			out[i].Capacity = 0
			out[i].Traffic = 0
		}
	}
	for name := range dead {
		if !known[name] {
			return nil, fmt.Errorf("ddak: cannot degrade unknown bin %q", name)
		}
	}
	for tier, dt := range deadTraffic {
		if dt == 0 {
			continue
		}
		var surv []int
		sum := 0.0
		for i := range out {
			if out[i].Tier == tier && !dead[out[i].Name] {
				surv = append(surv, i)
				sum += out[i].Traffic
			}
		}
		if len(surv) == 0 {
			return nil, fmt.Errorf("ddak: tier %s lost every bin with %.0f traffic bytes outstanding", tier, dt)
		}
		for _, i := range surv {
			if sum > 0 {
				out[i].Traffic += dt * out[i].Traffic / sum
			} else {
				out[i].Traffic += dt / float64(len(surv))
			}
		}
	}
	return out, nil
}

// HitRateItems sums normalized access mass over bins of a tier.
func (a *ItemAssignment) HitRateItems(tier Tier) float64 {
	var mass, tierMass float64
	for i, b := range a.Bins {
		mass += a.Access[i]
		if b.Tier == tier {
			tierMass += a.Access[i]
		}
	}
	if mass == 0 {
		return 0
	}
	return tierMass / mass
}
