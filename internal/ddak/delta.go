package ddak

import (
	"fmt"
	"math"
	"sort"

	"moment/internal/obs"
)

// DeltaOptions tune PlaceItemsDelta.
type DeltaOptions struct {
	// MaxMoveFrac is the migration budget as a fraction of total item
	// bytes: when the incremental solve would move more than this, it
	// abandons the delta and falls back to a full PlaceItems re-solve
	// (the delta's structure-preserving repair is only worth its bias
	// while the move set is small). <= 0 means the default 0.5.
	MaxMoveFrac float64
	// Observer receives delta counters and the "ddak_delta" span.
	Observer *obs.Observer
}

// DeltaResult is an incremental re-solve: the new layout plus the
// migration bill relative to the previous assignment.
type DeltaResult struct {
	Assignment *ItemAssignment
	// MovedItems / MovedBytes count items whose bin changed vs prev.
	MovedItems int
	MovedBytes float64
	// FellBack reports that the delta exceeded MaxMoveFrac and the
	// result came from a full PlaceItems instead.
	FellBack bool
}

// densityOrder returns item indices sorted hot-first by access density
// (mass per byte), the same ordering PlaceItems uses. Stable, so items
// with equal density keep index order — identical inputs produce
// identical orders.
func densityOrder(items []Item) []int32 {
	order := make([]int32, len(items))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := items[order[i]], items[order[j]]
		return a.Hot*b.Bytes > b.Hot*a.Bytes
	})
	return order
}

// PlaceItemsDelta incrementally re-solves a DDAK layout after the item
// hotness profile drifted. Rather than re-running the pooled greedy fill
// (whose pool boundaries cascade under small input perturbations, moving
// far more data than the drift warrants), it preserves the previous
// solve's rank→bin structure: the item at hotness rank r in the new
// profile goes to the bin that held rank r in the old profile. Only
// vertices whose hotness rank crossed a bin boundary move; everything
// else stays put by construction. Items that no longer fit their rank's
// bin (sizes shifted across ranks, or bins shrank) are repaired with the
// same tiered minimum-priority fill PlaceItems uses, honoring traffic
// caps first. When the resulting migration exceeds opt.MaxMoveFrac of
// total bytes the delta is abandoned for a full PlaceItems re-solve
// (DeltaResult.FellBack).
//
// prevItems must be the exact item slice prev was solved from; items must
// be index-compatible with it (same length, same Bytes per index — only
// Hot may drift). bins must match prev.Bins tier-for-tier; capacities and
// traffic budgets may differ.
func PlaceItemsDelta(prevItems []Item, prev *ItemAssignment, items []Item, bins []Bin, poolN int, trafficScale float64, opt DeltaOptions) (*DeltaResult, error) {
	if prev == nil {
		return nil, fmt.Errorf("ddak: delta re-solve needs a previous assignment")
	}
	if err := checkItems(items, bins); err != nil {
		return nil, err
	}
	if len(prevItems) != len(items) {
		return nil, fmt.Errorf("ddak: delta item count changed: %d -> %d", len(prevItems), len(items))
	}
	if len(prev.Of) != len(prevItems) {
		return nil, fmt.Errorf("ddak: previous assignment covers %d items, not %d", len(prev.Of), len(prevItems))
	}
	if len(bins) != len(prev.Bins) {
		return nil, fmt.Errorf("ddak: delta bin count changed: %d -> %d", len(prev.Bins), len(bins))
	}
	for i := range bins {
		if bins[i].Tier != prev.Bins[i].Tier {
			return nil, fmt.Errorf("ddak: bin %d tier changed %s -> %s", i, prev.Bins[i].Tier, bins[i].Tier)
		}
	}
	var totalBytes float64
	for i := range items {
		if items[i].Bytes != prevItems[i].Bytes {
			return nil, fmt.Errorf("ddak: item %d bytes changed %.0f -> %.0f (delta handles hotness drift only)",
				i, prevItems[i].Bytes, items[i].Bytes)
		}
		totalBytes += items[i].Bytes
	}
	maxFrac := opt.MaxMoveFrac
	if maxFrac <= 0 {
		maxFrac = 0.5
	}
	o := opt.Observer
	sp := o.Begin("ddak_delta")
	sp.SetInt("items", len(items))
	defer sp.End()

	oldOrder := densityOrder(prevItems)
	newOrder := densityOrder(items)

	a := &ItemAssignment{
		Bins:   append([]Bin(nil), bins...),
		Of:     make([]int32, len(items)),
		Used:   make([]float64, len(bins)),
		Access: make([]float64, len(bins)),
	}
	free := make([]float64, len(bins))
	for i, b := range bins {
		free[i] = b.Capacity
	}
	for i := range a.Of {
		a.Of[i] = -1
	}
	residents := make([][]int32, len(bins))
	place := func(v int32, bin int) {
		it := items[v]
		a.Of[v] = int32(bin)
		a.Used[bin] += it.Bytes
		a.Access[bin] += it.Hot
		free[bin] -= it.Bytes
		residents[bin] = append(residents[bin], v)
	}
	// denser reports whether item x has strictly higher access density
	// than item y (cross-multiplied, no division).
	denser := func(x, y int32) bool {
		return items[x].Hot*items[y].Bytes > items[y].Hot*items[x].Bytes
	}

	// Tentative pass: new rank r inherits old rank r's bin. Deferred
	// items stay in rank order, so the repair pass below is hot-first.
	var deferred []int32
	for r, v := range newOrder {
		bin := prev.Of[oldOrder[r]]
		if int(bin) < len(bins) && bin >= 0 && free[bin] >= items[v].Bytes {
			place(v, int(bin))
		} else {
			deferred = append(deferred, v)
		}
	}

	// Repair pass: same tiered minimum-priority fill as PlaceItems,
	// traffic caps honored until no uncapped bin can take the item. A
	// deferred item that finds no room in a tier may evict strictly
	// colder (lower-density) residents to make space before spilling to
	// the next tier — without this, a hot item whose byte size outgrew
	// its rank's bin would strand on SSD behind the colder items the
	// tentative pass already seated, and the layout quality would not
	// track a full re-solve. Evictees rejoin the queue; density strictly
	// decreases along any eviction chain, so the repair terminates.
	priority := func(i int) float64 {
		b := a.Bins[i]
		fill := 0.0
		if b.Capacity > 0 {
			fill = a.Used[i] / b.Capacity
		}
		if b.Traffic <= 0 {
			return math.Inf(1)
		}
		return (a.Access[i] / b.Traffic) * fill
	}
	capped := func(i int) bool {
		if trafficScale <= 0 {
			return false
		}
		return a.Access[i]*trafficScale >= a.Bins[i].Traffic
	}
	// evictable returns the bytes bin i could free for item v by evicting
	// strictly colder residents.
	evictable := func(i int, v int32) float64 {
		sum := 0.0
		for _, w := range residents[i] {
			if denser(v, w) {
				sum += items[w].Bytes
			}
		}
		return sum
	}
	evict := func(bin int, v int32, need float64) []int32 {
		// Coldest first, so the evicted set is minimal in mass.
		sort.SliceStable(residents[bin], func(i, j int) bool {
			return denser(residents[bin][j], residents[bin][i])
		})
		var out []int32
		kept := residents[bin][:0]
		for _, w := range residents[bin] {
			if free[bin] < need && denser(v, w) {
				a.Of[w] = -1
				a.Used[bin] -= items[w].Bytes
				a.Access[bin] -= items[w].Hot
				free[bin] += items[w].Bytes
				out = append(out, w)
				continue
			}
			kept = append(kept, w)
		}
		residents[bin] = kept
		return out
	}
	fallBack := false
	for qi := 0; qi < len(deferred); qi++ {
		if len(deferred) > 8*len(items) {
			// Eviction churn: the repair is thrashing, a full re-solve
			// is cheaper and strictly better. (Chains shorten by density
			// each step so this is a belt-and-braces bound, not an
			// expected path.)
			fallBack = true
			break
		}
		v := deferred[qi]
		need := items[v].Bytes
		bin := -1
		for _, tier := range []Tier{TierGPU, TierCPU, TierSSD} {
			inTier := func(i int) bool { return a.Bins[i].Tier == tier }
			tierOf := func(i int) Tier { return a.Bins[i].Tier }
			// Free space first, honoring traffic caps.
			bin = pickBin(len(a.Bins),
				func(i int) bool { return inTier(i) && free[i] >= need && !capped(i) },
				priority, tierOf)
			if bin >= 0 {
				break
			}
			// Then eviction of strictly colder residents.
			bin = pickBin(len(a.Bins),
				func(i int) bool { return inTier(i) && free[i]+evictable(i, v) >= need },
				priority, tierOf)
			if bin >= 0 {
				for _, w := range evict(bin, v, need) {
					// Re-queue the evictee in density position so the
					// remaining repair stays hot-first.
					at := len(deferred)
					for k := qi + 1; k < len(deferred); k++ {
						if denser(w, deferred[k]) {
							at = k
							break
						}
					}
					deferred = append(deferred, 0)
					copy(deferred[at+1:], deferred[at:])
					deferred[at] = w
				}
				break
			}
		}
		if bin < 0 {
			// Caps blocked everything: capacity alone governs now, still
			// preferring the fastest tier with room (as PlaceItems does).
			for _, tier := range []Tier{TierGPU, TierCPU, TierSSD} {
				bin = pickBin(len(a.Bins),
					func(i int) bool { return a.Bins[i].Tier == tier && free[i] >= need },
					priority,
					func(i int) Tier { return a.Bins[i].Tier })
				if bin >= 0 {
					break
				}
			}
		}
		if bin < 0 {
			return nil, fmt.Errorf("ddak: delta repair: no bin can hold item %d (%.0f bytes)", v, need)
		}
		place(v, bin)
		a.Pools++
	}

	// Promotion pass: when the new top ranks shrank in bytes, the
	// tentative map leaves fast bins underfilled — and no deferred item
	// exists to claim the space. A full re-solve would fill every cache
	// bin to its capacity (or traffic cap) with the densest items, so
	// the delta must too or its hit rate detaches from the oracle's.
	// One density-ordered walk per cache tier: each item currently on a
	// strictly slower tier takes target-tier free space if it fits and
	// the bin is uncapped. GPU first, then CPU (which by then also owns
	// the space GPU promotions vacated). Skipped when nothing changed:
	// the full solve's pooling leaves fittable riders on slow tiers, and
	// "promoting" those on an undrifted input would break the delta's
	// no-drift-is-a-no-op contract.
	sameBins := true
	for i := range bins {
		if bins[i] != prev.Bins[i] {
			sameBins = false
			break
		}
	}
	preMoved, _ := diffMoves(prev, a, items)
	if !fallBack && (preMoved > 0 || !sameBins) {
		unplace := func(v int32) {
			bin := a.Of[v]
			a.Of[v] = -1
			a.Used[bin] -= items[v].Bytes
			a.Access[bin] -= items[v].Hot
			free[bin] += items[v].Bytes
			for k, w := range residents[bin] {
				if w == v {
					residents[bin] = append(residents[bin][:k], residents[bin][k+1:]...)
					break
				}
			}
		}
		for _, target := range []Tier{TierGPU, TierCPU} {
			for _, v := range newOrder {
				cur := a.Of[v]
				if cur < 0 || a.Bins[cur].Tier <= target {
					continue
				}
				need := items[v].Bytes
				bin := pickBin(len(a.Bins),
					func(i int) bool {
						return a.Bins[i].Tier == target && free[i] >= need && !capped(i)
					},
					priority,
					func(i int) Tier { return a.Bins[i].Tier })
				if bin < 0 {
					continue
				}
				unplace(v)
				place(v, bin)
				a.Pools++
			}
		}
	}

	moved, movedBytes := 0, 0.0
	if !fallBack {
		moved, movedBytes = diffMoves(prev, a, items)
	}
	if fallBack || movedBytes > maxFrac*totalBytes {
		// The structural delta would move too much — a full re-solve is
		// at least as good a layout for the same (or larger) bill, and
		// the caller budgeted for it.
		full, err := PlaceItemsObserved(items, bins, poolN, trafficScale, o)
		if err != nil {
			return nil, err
		}
		fm, fb := diffMoves(prev, full, items)
		if o != nil {
			o.Counter("ddak_delta_fallbacks_total").Add(1)
			o.Counter("ddak_delta_moved_items_total").Add(float64(fm))
		}
		sp.SetInt("moved", fm)
		return &DeltaResult{Assignment: full, MovedItems: fm, MovedBytes: fb, FellBack: true}, nil
	}
	if CheckItems != nil {
		if err := CheckItems(a, items); err != nil {
			return nil, fmt.Errorf("ddak: delta self-check failed: %w", err)
		}
	}
	if o != nil {
		o.Counter("ddak_delta_solves_total").Add(1)
		o.Counter("ddak_delta_moved_items_total").Add(float64(moved))
	}
	sp.SetInt("moved", moved)
	return &DeltaResult{Assignment: a, MovedItems: moved, MovedBytes: movedBytes}, nil
}

// diffMoves counts items whose bin differs between prev and next.
func diffMoves(prev, next *ItemAssignment, items []Item) (int, float64) {
	moved := 0
	bytes := 0.0
	for i := range next.Of {
		if next.Of[i] != prev.Of[i] {
			moved++
			bytes += items[i].Bytes
		}
	}
	return moved, bytes
}
