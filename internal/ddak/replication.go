package ddak

import (
	"fmt"
	"math"
)

// ReplicationPlan prices one point on the cross-node replication axis of
// the §5 multi-node generalization: a fraction r of the SSD-tier bytes —
// the hot head of the (non-cached) access distribution — is pinned into
// every node, billed against per-node capacity, while the cold tail is
// partitioned across the cluster and only its accesses can cross the
// network.
type ReplicationPlan struct {
	// R is the requested replicated byte fraction, clamped to [0, 1].
	R float64
	// Nodes is the cluster size.
	Nodes int

	// HeadMass/HeadBytes describe the replicated hot head; the boundary
	// item is split fractionally, so both are continuous in R.
	HeadMass  float64
	HeadBytes float64
	// TailMass/TailBytes describe the partitioned cold tail.
	TailMass  float64
	TailBytes float64

	// ShardFrac is the fraction of the tier's bytes each node stores:
	// r + (1-r)/Nodes (replicated head in full, a 1/Nodes tail shard).
	ShardFrac float64
	// PerNodeBytes is the per-node capacity bill: HeadBytes + TailBytes/Nodes.
	PerNodeBytes float64
	// RemoteMass is the access mass that crosses the network per epoch:
	// TailMass x crossFrac, in the same unit as the items' Hot masses
	// (multiply by the epoch's fetched bytes to get wire bytes).
	RemoteMass float64
}

// PlanReplication splits items — the SSD-tier virtual buckets, hot first —
// into a replicated head of r x total bytes and a partitioned tail, for a
// cluster of nodes machines whose tail accesses cross the network with
// probability crossFrac (uniform partitioning gives (nodes-1)/nodes; a
// scored partition layout gives its mirror fraction).
//
// The plan is exact at the endpoints (r=0: no head, every tail access
// rolls crossFrac; r=1: everything replicated, nothing remote) and
// monotone in between: raising r never increases RemoteMass and never
// decreases PerNodeBytes — the properties the cluster planner's axis sweep
// relies on.
func PlanReplication(items []Item, r float64, nodes int, crossFrac float64) (ReplicationPlan, error) {
	if nodes <= 0 {
		return ReplicationPlan{}, fmt.Errorf("ddak: replication across %d nodes", nodes)
	}
	if math.IsNaN(r) {
		return ReplicationPlan{}, fmt.Errorf("ddak: NaN replication factor")
	}
	if crossFrac < 0 || crossFrac > 1 || math.IsNaN(crossFrac) {
		return ReplicationPlan{}, fmt.Errorf("ddak: cross fraction %v outside [0,1]", crossFrac)
	}
	r = math.Min(1, math.Max(0, r))

	totalMass, totalBytes := 0.0, 0.0
	for _, it := range items {
		if it.Hot < 0 || it.Bytes < 0 {
			return ReplicationPlan{}, fmt.Errorf("ddak: negative item mass or size")
		}
		totalMass += it.Hot
		totalBytes += it.Bytes
	}

	p := ReplicationPlan{
		R:         r,
		Nodes:     nodes,
		ShardFrac: r + (1-r)/float64(nodes),
	}
	target := r * totalBytes
	if r > 0 {
		acc := 0.0
		for _, it := range items {
			if acc+it.Bytes <= target {
				acc += it.Bytes
				p.HeadMass += it.Hot
				continue
			}
			// Boundary bucket: replicate the fraction that fits the
			// budget (virtual buckets subdivide freely).
			if it.Bytes > 0 && target > acc {
				frac := (target - acc) / it.Bytes
				p.HeadMass += it.Hot * frac
				acc = target
			}
			break
		}
		p.HeadBytes = math.Min(acc, target)
	}
	p.TailMass = math.Max(0, totalMass-p.HeadMass)
	p.TailBytes = math.Max(0, totalBytes-p.HeadBytes)
	p.PerNodeBytes = p.HeadBytes + p.TailBytes/float64(nodes)
	p.RemoteMass = p.TailMass * crossFrac
	return p, nil
}
