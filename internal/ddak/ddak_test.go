package ddak

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"moment/internal/sample"
)

// standard bin set: 2 GPU caches, 1 CPU cache, 4 SSDs.
func testBins() []Bin {
	return []Bin{
		{Name: "hbm0", Tier: TierGPU, Capacity: 100, Traffic: 500},
		{Name: "hbm1", Tier: TierGPU, Capacity: 100, Traffic: 500},
		{Name: "dram0", Tier: TierCPU, Capacity: 300, Traffic: 300},
		{Name: "ssd0", Tier: TierSSD, Capacity: 10_000, Traffic: 100},
		{Name: "ssd1", Tier: TierSSD, Capacity: 10_000, Traffic: 100},
		{Name: "ssd2", Tier: TierSSD, Capacity: 10_000, Traffic: 100},
		{Name: "ssd3", Tier: TierSSD, Capacity: 10_000, Traffic: 100},
	}
}

func zipfHot(t *testing.T, n int) []float64 {
	t.Helper()
	h, err := sample.ZipfHotness(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPlaceBasics(t *testing.T) {
	hot := zipfHot(t, 2000)
	a, err := Place(hot, 1, testBins(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(1); err != nil {
		t.Fatal(err)
	}
	if len(a.Of) != 2000 {
		t.Fatalf("placed %d", len(a.Of))
	}
	if a.Pools == 0 {
		t.Fatal("no pooled decisions recorded")
	}
}

func TestPlaceHotVerticesLandInFastTiers(t *testing.T) {
	hot := zipfHot(t, 2000)
	a, err := Place(hot, 1, testBins(), 10)
	if err != nil {
		t.Fatal(err)
	}
	// The hottest vertex must be in a cache tier, not an SSD.
	if tier := a.Bins[a.Of[0]].Tier; tier == TierSSD {
		t.Errorf("hottest vertex placed on %v", a.Bins[a.Of[0]].Name)
	}
	// GPU-cache hit rate should far exceed the capacity share.
	gpuHit := a.HitRate(TierGPU)
	capShare := 200.0 / 2000.0
	if gpuHit < 3*capShare {
		t.Errorf("GPU hit rate %.3f barely above capacity share %.3f", gpuHit, capShare)
	}
}

func TestPlaceBeatsHashOnTrafficMatch(t *testing.T) {
	hot := zipfHot(t, 5000)
	bins := testBins()
	// Scale capacities so everything fits.
	for i := range bins {
		if bins[i].Tier == TierSSD {
			bins[i].Capacity = 5000
		}
	}
	d, err := Place(hot, 1, bins, 100)
	if err != nil {
		t.Fatal(err)
	}
	h, err := HashPlace(hot, 1, bins)
	if err != nil {
		t.Fatal(err)
	}
	const total = 1600
	md, err := d.TrafficMismatch(hot, total)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := h.TrafficMismatch(hot, total)
	if err != nil {
		t.Fatal(err)
	}
	if md >= mh {
		t.Errorf("DDAK mismatch %.3f >= hash %.3f", md, mh)
	}
	// DDAK's GPU hit rate should beat hash's by a wide margin.
	if d.HitRate(TierGPU) < 2*h.HitRate(TierGPU) {
		t.Errorf("DDAK gpu hit %.3f vs hash %.3f", d.HitRate(TierGPU), h.HitRate(TierGPU))
	}
}

func TestPlaceRespectsCapacitiesProperty(t *testing.T) {
	f := func(seed int64, poolRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 500 + r.Intn(1500)
		hot := make([]float64, n)
		for i := range hot {
			hot[i] = r.Float64()
		}
		bins := []Bin{
			{Name: "g", Tier: TierGPU, Capacity: float64(50 + r.Intn(100)), Traffic: r.Float64() * 1000},
			{Name: "c", Tier: TierCPU, Capacity: float64(100 + r.Intn(200)), Traffic: r.Float64() * 1000},
			{Name: "s0", Tier: TierSSD, Capacity: float64(n), Traffic: r.Float64() * 1000},
			{Name: "s1", Tier: TierSSD, Capacity: float64(n), Traffic: r.Float64() * 1000},
		}
		pool := int(poolRaw)%200 + 1
		a, err := Place(hot, 1, bins, pool)
		if err != nil {
			return false
		}
		return a.Validate(1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPoolingReducesDecisions(t *testing.T) {
	hot := zipfHot(t, 10_000)
	bins := testBins()
	for i := range bins {
		bins[i].Capacity *= 10
	}
	a1, err := Place(hot, 1, bins, 1)
	if err != nil {
		t.Fatal(err)
	}
	a100, err := Place(hot, 1, bins, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a100.Pools >= a1.Pools {
		t.Errorf("pooling did not reduce decisions: %d vs %d", a100.Pools, a1.Pools)
	}
	if a1.Pools != 10_000 {
		t.Errorf("poolN=1 should decide per vertex, got %d", a1.Pools)
	}
	// Pooled placement should stay close in quality (GPU hit rate).
	if d := a1.HitRate(TierGPU) - a100.HitRate(TierGPU); d > 0.05 {
		t.Errorf("pooling cost %.3f hit rate", d)
	}
}

func TestPlaceZeroPoolDefaults(t *testing.T) {
	hot := zipfHot(t, 300)
	a, err := Place(hot, 1, testBins(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// default pool size 100 -> at least ceil(300/100) pools, but bins may
	// split pools; just require fewer decisions than vertices.
	if a.Pools >= 300 {
		t.Errorf("default pooling ineffective: %d pools", a.Pools)
	}
}

func TestZeroTrafficBinsAreLastResort(t *testing.T) {
	hot := zipfHot(t, 100)
	bins := []Bin{
		{Name: "budgeted", Tier: TierSSD, Capacity: 60, Traffic: 100},
		{Name: "cold", Tier: TierSSD, Capacity: 100, Traffic: 0},
	}
	a, err := Place(hot, 1, bins, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Used[0] != 60 {
		t.Errorf("budgeted bin used %.0f, want full 60", a.Used[0])
	}
	if a.Used[1] != 40 {
		t.Errorf("cold bin used %.0f, want overflow 40", a.Used[1])
	}
	// The cold bin must hold the coldest vertices.
	if a.Of[0] != 0 {
		t.Error("hottest vertex in zero-traffic bin")
	}
}

func TestPlaceErrors(t *testing.T) {
	hot := zipfHot(t, 10)
	bins := testBins()
	if _, err := Place(nil, 1, bins, 10); err == nil {
		t.Error("empty hotness accepted")
	}
	if _, err := Place(hot, 0, bins, 10); err == nil {
		t.Error("zero bytes/vertex accepted")
	}
	if _, err := Place(hot, 1, nil, 10); err == nil {
		t.Error("no bins accepted")
	}
	if _, err := Place(hot, 1, []Bin{{Name: "tiny", Capacity: 2, Traffic: 1}}, 10); err == nil {
		t.Error("insufficient capacity accepted")
	}
	if _, err := Place([]float64{0.5, math.NaN()}, 1, bins, 10); err == nil {
		t.Error("NaN hotness accepted")
	}
	if _, err := Place([]float64{0.5, -0.1}, 1, bins, 10); err == nil {
		t.Error("negative hotness accepted")
	}
	bad := testBins()
	bad[0].Capacity = -5
	if _, err := Place(hot, 1, bad, 10); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestHashPlaceUniform(t *testing.T) {
	hot := zipfHot(t, 4000)
	bins := []Bin{
		{Name: "s0", Tier: TierSSD, Capacity: 2000, Traffic: 100},
		{Name: "s1", Tier: TierSSD, Capacity: 2000, Traffic: 100},
		{Name: "s2", Tier: TierSSD, Capacity: 2000, Traffic: 100},
		{Name: "s3", Tier: TierSSD, Capacity: 2000, Traffic: 100},
	}
	a, err := HashPlace(hot, 1, bins)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(1); err != nil {
		t.Fatal(err)
	}
	for i := range bins {
		if math.Abs(a.Used[i]-1000) > 10 {
			t.Errorf("bin %d used %.0f, want ~1000 (uniform)", i, a.Used[i])
		}
	}
	// Hash spreads hotness roughly evenly: each bin ~25%.
	for i := range bins {
		if a.Access[i] < 0.15 || a.Access[i] > 0.35 {
			t.Errorf("bin %d hotness share %.3f not ~0.25", i, a.Access[i])
		}
	}
}

func TestHashPlaceCapacityWeighted(t *testing.T) {
	hot := zipfHot(t, 3000)
	bins := []Bin{
		{Name: "big", Tier: TierSSD, Capacity: 4000, Traffic: 1},
		{Name: "small", Tier: TierSSD, Capacity: 1000, Traffic: 1},
	}
	a, err := HashPlace(hot, 1, bins)
	if err != nil {
		t.Fatal(err)
	}
	ratio := a.Used[0] / a.Used[1]
	if ratio < 3 || ratio > 5 {
		t.Errorf("capacity weighting off: used %v", a.Used)
	}
}

func TestServedBytes(t *testing.T) {
	hot := []float64{0.5, 0.3, 0.2}
	bins := []Bin{
		{Name: "a", Tier: TierGPU, Capacity: 1, Traffic: 10},
		{Name: "b", Tier: TierSSD, Capacity: 10, Traffic: 10},
	}
	a, err := Place(hot, 1, bins, 1)
	if err != nil {
		t.Fatal(err)
	}
	served, err := a.ServedBytes(hot, 100)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range served {
		sum += s
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("served sums to %v", sum)
	}
	// Hottest vertex is in the GPU bin: it alone serves 50.
	if math.Abs(served[0]-50) > 1e-9 {
		t.Errorf("gpu bin served %v, want 50", served[0])
	}
	if _, err := a.ServedBytes([]float64{1}, 100); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestTierString(t *testing.T) {
	if TierGPU.String() != "gpu" || TierCPU.String() != "cpu" || TierSSD.String() != "ssd" {
		t.Error("tier names changed")
	}
	if Tier(9).String() != "tier(9)" {
		t.Error("unknown tier name")
	}
}

func TestTrafficMismatchErrors(t *testing.T) {
	hot := zipfHot(t, 10)
	bins := []Bin{{Name: "s", Tier: TierSSD, Capacity: 100, Traffic: 0}}
	a, err := Place(hot, 1, bins, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.TrafficMismatch(hot, 10); err == nil {
		t.Error("zero traffic budget accepted")
	}
}

func testItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Hot: 1 / float64(i+1), Bytes: 10}
	}
	return items
}

func TestPlaceItemsBasics(t *testing.T) {
	items := testItems(500)
	bins := []Bin{
		{Name: "g", Tier: TierGPU, Capacity: 500, Traffic: 100},
		{Name: "c", Tier: TierCPU, Capacity: 1000, Traffic: 50},
		{Name: "s", Tier: TierSSD, Capacity: 10000, Traffic: 20},
	}
	a, err := PlaceItems(items, bins, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Of) != 500 {
		t.Fatalf("placed %d items", len(a.Of))
	}
	// Capacity respected.
	for i := range bins {
		if a.Used[i] > bins[i].Capacity+1e-9 {
			t.Errorf("bin %d over capacity", i)
		}
	}
	// Hottest item lands in a cache tier.
	if a.Bins[a.Of[0]].Tier == TierSSD {
		t.Error("hottest item on SSD")
	}
	if a.HitRateItems(TierGPU) <= 0 {
		t.Error("no GPU hit mass")
	}
	served := a.ServedBytesItems(1000)
	sum := 0.0
	for _, s := range served {
		sum += s
	}
	if math.Abs(sum-1000) > 1e-6 {
		t.Errorf("served sums to %v", sum)
	}
}

func TestPlaceItemsVariableSizes(t *testing.T) {
	items := []Item{
		{Hot: 10, Bytes: 100}, // hot but large
		{Hot: 5, Bytes: 1},
		{Hot: 1, Bytes: 1},
	}
	bins := []Bin{
		{Name: "g", Tier: TierGPU, Capacity: 50, Traffic: 100}, // too small for item 0
		{Name: "s", Tier: TierSSD, Capacity: 1000, Traffic: 10},
	}
	a, err := PlaceItems(items, bins, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Of[0] != 1 {
		t.Error("oversized item should spill to SSD")
	}
	// Density ordering: item 1 (5/1) outranks item 0 (10/100).
	if a.Of[1] != 0 {
		t.Error("dense hot item should take the cache")
	}
}

func TestPlaceItemsErrors(t *testing.T) {
	bins := []Bin{{Name: "s", Tier: TierSSD, Capacity: 100, Traffic: 1}}
	if _, err := PlaceItems(nil, bins, 1, 0); err == nil {
		t.Error("no items accepted")
	}
	if _, err := PlaceItems([]Item{{Hot: 1, Bytes: 0}}, bins, 1, 0); err == nil {
		t.Error("zero-byte item accepted")
	}
	if _, err := PlaceItems([]Item{{Hot: -1, Bytes: 1}}, bins, 1, 0); err == nil {
		t.Error("negative hot accepted")
	}
	if _, err := PlaceItems([]Item{{Hot: 1, Bytes: 200}}, bins, 1, 0); err == nil {
		t.Error("capacity overflow accepted")
	}
	if _, err := HashPlaceItems([]Item{{Hot: 1, Bytes: 200}}, bins); err == nil {
		t.Error("hash overflow accepted")
	}
}

func TestHashPlaceItemsIgnoresHotness(t *testing.T) {
	items := testItems(1000)
	bins := []Bin{
		{Name: "g", Tier: TierGPU, Capacity: 2500, Traffic: 100},
		{Name: "s", Tier: TierSSD, Capacity: 7500, Traffic: 10},
	}
	h, err := HashPlaceItems(items, bins)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity-proportional spread: 25% / 75%.
	if math.Abs(h.Used[0]-2500) > 100 {
		t.Errorf("hash used %v", h.Used)
	}
	d, err := PlaceItems(items, bins, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.HitRateItems(TierGPU) <= h.HitRateItems(TierGPU) {
		t.Errorf("DDAK gpu hit %.3f <= hash %.3f",
			d.HitRateItems(TierGPU), h.HitRateItems(TierGPU))
	}
}

// Regression: pick() used to compare computed float priorities with ==, so
// the documented GPU > CPU > SSD tie-break almost never fired once any
// access/fill had accumulated. 0.1+0.2 and 0.3 are equal in exact
// arithmetic but differ in float64; the near-tie must go to the GPU bin
// even though the CPU bin's float happens to be the strictly smaller one.
func TestPickBinNearTiePrefersFasterTier(t *testing.T) {
	// Computed at runtime — Go folds constant expressions exactly, which
	// would erase the float discrepancy this test depends on.
	x, y, half := 0.1, 0.2, 0.5
	prios := []float64{0.3 * half, (x + y) * half} // 0.15 vs 0.15000000000000002
	if prios[0] == prios[1] {
		t.Fatal("test premise broken: priorities compare exactly equal")
	}
	tiers := []Tier{TierCPU, TierGPU}
	got := pickBin(2,
		func(int) bool { return true },
		func(i int) float64 { return prios[i] },
		func(i int) Tier { return tiers[i] })
	if got != 1 {
		t.Errorf("near-tie picked bin %d (tier %v), want GPU bin 1", got, tiers[got])
	}
	// A genuine gap must still win over tier preference.
	gap := []float64{0.10, 0.15}
	got = pickBin(2,
		func(int) bool { return true },
		func(i int) float64 { return gap[i] },
		func(i int) Tier { return tiers[i] })
	if got != 0 {
		t.Errorf("clear minimum lost to tier tie-break: picked %d", got)
	}
	// Equal priority and equal tier: earliest index wins.
	got = pickBin(2,
		func(int) bool { return true },
		func(int) float64 { return 0.5 },
		func(int) Tier { return TierSSD })
	if got != 0 {
		t.Errorf("index tie-break picked %d, want 0", got)
	}
}

// Two equal-priority bins through the full Place path: with identical
// capacity and traffic the GPU bin must be preferred on every tie, so it
// can never end up with fewer vertices than the CPU bin listed before it.
func TestPlaceEqualPriorityBinsPreferGPU(t *testing.T) {
	bins := []Bin{
		{Name: "dram", Tier: TierCPU, Capacity: 50, Traffic: 100},
		{Name: "hbm", Tier: TierGPU, Capacity: 50, Traffic: 100},
	}
	hot := make([]float64, 100)
	for i := range hot {
		hot[i] = 1.0 / float64(i+3) // distinct, accumulating sums
	}
	a, err := Place(hot, 1, bins, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(1); err != nil {
		t.Fatal(err)
	}
	// The very first (hottest) pool must land on the GPU bin.
	if a.Of[0] != 1 {
		t.Errorf("hottest vertex in bin %d (%s), want GPU", a.Of[0], a.Bins[a.Of[0]].Name)
	}
	// Ties broken toward GPU keep the two equal bins in lockstep: the GPU
	// bin's access mass can trail the CPU bin's only by sub-epsilon noise,
	// never by a whole vertex.
	if a.Access[0]-a.Access[1] > hot[len(hot)-1] {
		t.Errorf("GPU access %v trails CPU access %v by a full vertex", a.Access[1], a.Access[0])
	}
	if a.Used[0] != 50 || a.Used[1] != 50 {
		t.Errorf("bins not filled evenly: %v", a.Used)
	}
}
