package ddak

import (
	"math"
	"math/rand"
	"testing"
)

func replZipfItems(t *testing.T, n int, seed int64) []Item {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	mass := 0.0
	for i := range items {
		items[i] = Item{
			Hot:   1 / math.Pow(float64(i+1), 1.2),
			Bytes: float64(1 + r.Intn(8)),
		}
		mass += items[i].Hot
	}
	for i := range items {
		items[i].Hot /= mass // hot-first by construction, normalized
	}
	return items
}

// TestReplicationEndpoints pins the exact r=0 and r=full identities: no
// replication leaves every tail access rolling crossFrac and bills only the
// 1/N shard; full replication sends nothing remote and bills everything.
func TestReplicationEndpoints(t *testing.T) {
	items := replZipfItems(t, 200, 1)
	totalBytes := 0.0
	for _, it := range items {
		totalBytes += it.Bytes
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		crossFrac := float64(nodes-1) / float64(nodes)
		p0, err := PlanReplication(items, 0, nodes, crossFrac)
		if err != nil {
			t.Fatalf("r=0: %v", err)
		}
		if p0.HeadMass != 0 || p0.HeadBytes != 0 {
			t.Errorf("nodes=%d r=0: nonzero head %+v", nodes, p0)
		}
		if want := 1 * crossFrac; math.Abs(p0.RemoteMass-want) > 1e-12 {
			t.Errorf("nodes=%d r=0: RemoteMass=%v want %v", nodes, p0.RemoteMass, want)
		}
		if want := totalBytes / float64(nodes); math.Abs(p0.PerNodeBytes-want) > 1e-9 {
			t.Errorf("nodes=%d r=0: PerNodeBytes=%v want %v", nodes, p0.PerNodeBytes, want)
		}
		p1, err := PlanReplication(items, 1, nodes, crossFrac)
		if err != nil {
			t.Fatalf("r=1: %v", err)
		}
		if p1.RemoteMass != 0 {
			t.Errorf("nodes=%d r=1: RemoteMass=%v, want 0", nodes, p1.RemoteMass)
		}
		if math.Abs(p1.TailMass) > 1e-12 || math.Abs(p1.PerNodeBytes-totalBytes) > 1e-9 {
			t.Errorf("nodes=%d r=1: tail survived full replication: %+v", nodes, p1)
		}
		if p1.ShardFrac != 1 {
			t.Errorf("nodes=%d r=1: ShardFrac=%v", nodes, p1.ShardFrac)
		}
	}
}

// TestReplicationMonotone is the replication-axis property: more
// replication never increases cross-node traffic and never decreases the
// per-node capacity bill, over random item sets and cluster sizes.
func TestReplicationMonotone(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		items := replZipfItems(t, 50+int(seed)*40, seed)
		for _, nodes := range []int{2, 3, 8} {
			crossFrac := float64(nodes-1) / float64(nodes)
			prevRemote := math.Inf(1)
			prevPerNode := -1.0
			prevHeadMass := -1.0
			for r := 0.0; r <= 1.0001; r += 1.0 / 16 {
				p, err := PlanReplication(items, math.Min(r, 1), nodes, crossFrac)
				if err != nil {
					t.Fatalf("r=%v: %v", r, err)
				}
				if p.RemoteMass > prevRemote+1e-12 {
					t.Errorf("seed=%d nodes=%d r=%.3f: RemoteMass rose %v -> %v", seed, nodes, r, prevRemote, p.RemoteMass)
				}
				if p.PerNodeBytes < prevPerNode-1e-9 {
					t.Errorf("seed=%d nodes=%d r=%.3f: PerNodeBytes fell %v -> %v", seed, nodes, r, prevPerNode, p.PerNodeBytes)
				}
				if p.HeadMass < prevHeadMass-1e-12 {
					t.Errorf("seed=%d nodes=%d r=%.3f: HeadMass fell", seed, nodes, r)
				}
				if p.ShardFrac < 1/float64(nodes)-1e-12 || p.ShardFrac > 1+1e-12 {
					t.Errorf("ShardFrac %v outside [1/N, 1]", p.ShardFrac)
				}
				// Mass and byte conservation at every point on the axis.
				if math.Abs(p.HeadMass+p.TailMass-1) > 1e-9 {
					t.Errorf("mass leak: head %v + tail %v != 1", p.HeadMass, p.TailMass)
				}
				prevRemote, prevPerNode, prevHeadMass = p.RemoteMass, p.PerNodeBytes, p.HeadMass
			}
		}
	}
}

func TestReplicationValidation(t *testing.T) {
	items := replZipfItems(t, 10, 1)
	if _, err := PlanReplication(items, 0.5, 0, 0.5); err == nil {
		t.Error("accepted 0 nodes")
	}
	if _, err := PlanReplication(items, 0.5, 4, -0.1); err == nil {
		t.Error("accepted negative crossFrac")
	}
	if _, err := PlanReplication(items, math.NaN(), 4, 0.5); err == nil {
		t.Error("accepted NaN r")
	}
	if _, err := PlanReplication([]Item{{Hot: -1, Bytes: 1}}, 0.5, 4, 0.5); err == nil {
		t.Error("accepted negative mass")
	}
	// Out-of-range r clamps rather than errors (axis sweeps overshoot).
	p, err := PlanReplication(items, 1.5, 4, 0.5)
	if err != nil || p.R != 1 {
		t.Errorf("r=1.5: %+v, %v", p, err)
	}
	// Empty tier: a zero plan, not an error.
	p, err = PlanReplication(nil, 0.5, 4, 0.75)
	if err != nil || p.RemoteMass != 0 || p.PerNodeBytes != 0 {
		t.Errorf("empty items: %+v, %v", p, err)
	}
}
