package ddak

import (
	"math"
	"testing"
)

func degradeFixture() []Bin {
	return []Bin{
		{Name: "hbm", Tier: TierGPU, Capacity: 100, Traffic: 0.4},
		{Name: "dram", Tier: TierCPU, Capacity: 200, Traffic: 0.2},
		{Name: "ssd0", Tier: TierSSD, Capacity: 1000, Traffic: 0.1},
		{Name: "ssd1", Tier: TierSSD, Capacity: 1000, Traffic: 0.2},
		{Name: "ssd2", Tier: TierSSD, Capacity: 1000, Traffic: 0.1},
	}
}

func TestDegradeBinsRedistributesTraffic(t *testing.T) {
	bins := degradeFixture()
	out, err := DegradeBins(bins, map[string]bool{"ssd1": true})
	if err != nil {
		t.Fatal(err)
	}
	if out[3].Capacity != 0 || out[3].Traffic != 0 {
		t.Errorf("dead bin not zeroed: %+v", out[3])
	}
	// ssd1's 0.2 traffic splits over ssd0/ssd2 proportionally to their own
	// traffic (0.1 each → even split here).
	if math.Abs(out[2].Traffic-0.2) > 1e-12 || math.Abs(out[4].Traffic-0.2) > 1e-12 {
		t.Errorf("survivor traffic = %v, %v, want 0.2 each", out[2].Traffic, out[4].Traffic)
	}
	// Other tiers untouched; total traffic conserved.
	if out[0] != bins[0] || out[1] != bins[1] {
		t.Error("degradation leaked into other tiers")
	}
	sum := 0.0
	for _, b := range out {
		sum += b.Traffic
	}
	if math.Abs(sum-1.0) > 1e-12 {
		t.Errorf("total traffic %v, want 1.0", sum)
	}
	// Input slice must not be mutated.
	if bins[3].Traffic != 0.2 {
		t.Error("DegradeBins mutated its input")
	}
}

func TestDegradeBinsProportionalSplit(t *testing.T) {
	bins := []Bin{
		{Name: "ssd0", Tier: TierSSD, Capacity: 10, Traffic: 0.6},
		{Name: "ssd1", Tier: TierSSD, Capacity: 10, Traffic: 0.3},
		{Name: "ssd2", Tier: TierSSD, Capacity: 10, Traffic: 0.1},
	}
	out, err := DegradeBins(bins, map[string]bool{"ssd0": true})
	if err != nil {
		t.Fatal(err)
	}
	// 0.6 splits 3:1 across the survivors.
	if math.Abs(out[1].Traffic-0.75) > 1e-12 || math.Abs(out[2].Traffic-0.25) > 1e-12 {
		t.Errorf("split = %v, %v, want 0.75, 0.25", out[1].Traffic, out[2].Traffic)
	}
}

func TestDegradeBinsEvenSplitWhenSurvivorsIdle(t *testing.T) {
	bins := []Bin{
		{Name: "ssd0", Tier: TierSSD, Capacity: 10, Traffic: 0.5},
		{Name: "ssd1", Tier: TierSSD, Capacity: 10, Traffic: 0},
		{Name: "ssd2", Tier: TierSSD, Capacity: 10, Traffic: 0},
	}
	out, err := DegradeBins(bins, map[string]bool{"ssd0": true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[1].Traffic-0.25) > 1e-12 || math.Abs(out[2].Traffic-0.25) > 1e-12 {
		t.Errorf("idle survivors got %v, %v, want an even 0.25 each", out[1].Traffic, out[2].Traffic)
	}
}

func TestDegradeBinsMultipleDeaths(t *testing.T) {
	out, err := DegradeBins(degradeFixture(), map[string]bool{"ssd0": true, "ssd2": true})
	if err != nil {
		t.Fatal(err)
	}
	// Only ssd1 survives the tier: it absorbs everything.
	if math.Abs(out[3].Traffic-0.4) > 1e-12 {
		t.Errorf("sole survivor traffic %v, want 0.4", out[3].Traffic)
	}
}

func TestDegradeBinsErrors(t *testing.T) {
	if _, err := DegradeBins(degradeFixture(), map[string]bool{"nope": true}); err == nil {
		t.Error("unknown bin accepted")
	}
	// Killing every SSD leaves outstanding traffic with no home.
	dead := map[string]bool{"ssd0": true, "ssd1": true, "ssd2": true}
	if _, err := DegradeBins(degradeFixture(), dead); err == nil {
		t.Error("tier wipe-out with outstanding traffic accepted")
	}
	// A dead bin with zero traffic in a wiped tier is fine — nothing owed.
	bins := []Bin{
		{Name: "hbm", Tier: TierGPU, Capacity: 10, Traffic: 1},
		{Name: "ssd0", Tier: TierSSD, Capacity: 10, Traffic: 0},
	}
	out, err := DegradeBins(bins, map[string]bool{"ssd0": true})
	if err != nil {
		t.Fatalf("zero-traffic wipe-out rejected: %v", err)
	}
	if out[1].Capacity != 0 {
		t.Error("dead zero-traffic bin not zeroed")
	}
}
