package ddak

import (
	"math"
	"math/rand"
	"testing"

	"moment/internal/sample"
)

// validateItems checks ItemAssignment invariants directly from first
// principles: every item placed in range, capacities respected, Used and
// Access accounting consistent with Of.
func validateItems(t *testing.T, a *ItemAssignment, items []Item) {
	t.Helper()
	if len(a.Of) != len(items) {
		t.Fatalf("assignment covers %d of %d items", len(a.Of), len(items))
	}
	used := make([]float64, len(a.Bins))
	access := make([]float64, len(a.Bins))
	for v, b := range a.Of {
		if b < 0 || int(b) >= len(a.Bins) {
			t.Fatalf("item %d in bin %d out of range", v, b)
		}
		used[b] += items[v].Bytes
		access[b] += items[v].Hot
	}
	for i := range a.Bins {
		if used[i] > a.Bins[i].Capacity*(1+1e-9)+1e-6 {
			t.Fatalf("bin %s over capacity: %.1f > %.1f", a.Bins[i].Name, used[i], a.Bins[i].Capacity)
		}
		if math.Abs(used[i]-a.Used[i]) > 1e-6+1e-9*used[i] {
			t.Fatalf("bin %s used mismatch: %.3f vs %.3f", a.Bins[i].Name, used[i], a.Used[i])
		}
		if math.Abs(access[i]-a.Access[i]) > 1e-6+1e-9*access[i] {
			t.Fatalf("bin %s access mismatch: %.6f vs %.6f", a.Bins[i].Name, access[i], a.Access[i])
		}
	}
}

func zipfItems(t *testing.T, n int) []Item {
	t.Helper()
	hot, err := sample.ZipfHotness(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Hot: hot[i], Bytes: 1}
	}
	return items
}

func deltaBins() []Bin {
	return []Bin{
		{Name: "hbm0", Tier: TierGPU, Capacity: 100, Traffic: 500},
		{Name: "dram0", Tier: TierCPU, Capacity: 300, Traffic: 300},
		{Name: "ssd0", Tier: TierSSD, Capacity: 5000, Traffic: 100},
		{Name: "ssd1", Tier: TierSSD, Capacity: 5000, Traffic: 100},
	}
}

func TestDeltaNoDriftIsNoOp(t *testing.T) {
	items := zipfItems(t, 2000)
	bins := deltaBins()
	prev, err := PlaceItems(items, bins, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlaceItemsDelta(items, prev, items, bins, 10, 0, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FellBack {
		t.Fatal("no-drift delta fell back to a full solve")
	}
	if res.MovedItems != 0 || res.MovedBytes != 0 {
		t.Fatalf("no-drift delta moved %d items (%.0f bytes)", res.MovedItems, res.MovedBytes)
	}
	for i := range items {
		if res.Assignment.Of[i] != prev.Of[i] {
			t.Fatalf("item %d moved from bin %d to %d with identical input", i, prev.Of[i], res.Assignment.Of[i])
		}
	}
	validateItems(t, res.Assignment, items)
}

// A local swap inside one bin's rank range moves nothing; a swap across
// the GPU-cache boundary moves exactly the items whose ranks crossed it.
func TestDeltaMovesOnlyBoundaryCrossers(t *testing.T) {
	items := zipfItems(t, 2000)
	bins := deltaBins()
	prev, err := PlaceItems(items, bins, 10, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Swap the hotness of two items that share a bin: the rank
	// permutation stays within that bin, so nothing moves. (Pick the
	// pair by looking at the previous layout — adjacent SSD ranks can
	// straddle the ssd0/ssd1 split.)
	i, j := -1, -1
	for k := 1400; k < 1900 && j < 0; k++ {
		if prev.Of[k] == prev.Of[1300] && k != 1300 {
			i, j = 1300, k
		}
	}
	if j < 0 {
		t.Fatal("no same-bin pair found in the SSD range")
	}
	local := append([]Item(nil), items...)
	local[i].Hot, local[j].Hot = local[j].Hot, local[i].Hot
	res, err := PlaceItemsDelta(items, prev, local, bins, 10, 0, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedItems != 0 {
		t.Errorf("intra-bin rank swap moved %d items", res.MovedItems)
	}

	// Swap a deeply cold item with a hot one: both cross the cache
	// boundary, and only they should move.
	cross := append([]Item(nil), items...)
	cross[10].Hot, cross[1900].Hot = cross[1900].Hot, cross[10].Hot
	res, err = PlaceItemsDelta(items, prev, cross, bins, 10, 0, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FellBack {
		t.Fatal("two-item swap fell back")
	}
	if res.MovedItems != 2 {
		t.Errorf("cross-boundary swap moved %d items, want 2", res.MovedItems)
	}
	validateItems(t, res.Assignment, cross)
	// The promoted item takes the demoted one's exact slot and vice versa.
	if res.Assignment.Of[1900] != prev.Of[10] || res.Assignment.Of[10] != prev.Of[1900] {
		t.Errorf("swap did not exchange bins: %d/%d vs prev %d/%d",
			res.Assignment.Of[1900], res.Assignment.Of[10], prev.Of[10], prev.Of[1900])
	}
}

func TestDeltaFallsBackOverBudget(t *testing.T) {
	items := zipfItems(t, 1000)
	bins := deltaBins()
	prev, err := PlaceItems(items, bins, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse the hotness profile: nearly every rank changes bins.
	rev := make([]Item, len(items))
	for i := range items {
		rev[i] = Item{Hot: items[len(items)-1-i].Hot, Bytes: items[i].Bytes}
	}
	res, err := PlaceItemsDelta(items, prev, rev, bins, 10, 0, DeltaOptions{MaxMoveFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack {
		t.Fatal("full reversal under a 10% budget did not fall back")
	}
	// The fallback result must be exactly the full solve.
	full, err := PlaceItems(rev, bins, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rev {
		if res.Assignment.Of[i] != full.Of[i] {
			t.Fatalf("fallback differs from full solve at item %d: %d vs %d", i, res.Assignment.Of[i], full.Of[i])
		}
	}
	validateItems(t, res.Assignment, rev)
}

// Shrinking a cache bin defers its overflow to the repair pass; the
// result must stay valid and keep the hottest items in cache tiers.
func TestDeltaRepairsShrunkBins(t *testing.T) {
	items := zipfItems(t, 1000)
	bins := deltaBins()
	prev, err := PlaceItems(items, bins, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	shrunk := deltaBins()
	shrunk[0].Capacity = 40 // hbm0: 100 -> 40
	res, err := PlaceItemsDelta(items, prev, items, shrunk, 10, 0, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	validateItems(t, res.Assignment, items)
	if res.MovedItems < 60 {
		t.Errorf("shrinking hbm0 by 60 slots moved only %d items", res.MovedItems)
	}
	// The delta does not cascade evictions (displaced items take free
	// space, colder residents stay put), so it trails a full re-solve in
	// quality — but only by a bounded gap.
	full, err := PlaceItems(items, shrunk, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	dHit := res.Assignment.HitRateItems(TierGPU) + res.Assignment.HitRateItems(TierCPU)
	fHit := full.HitRateItems(TierGPU) + full.HitRateItems(TierCPU)
	if fHit-dHit > 0.2 {
		t.Errorf("delta fast-tier hit %.4f trails full %.4f by more than 0.2", dHit, fHit)
	}
}

// Under gradual drift the delta's layout quality must track the full
// re-solve while moving fewer bytes. Variable item sizes and traffic
// caps are what make the full pooled greedy cascade (pool boundaries
// shift, cap crossings reorder the fill), so this models trainsim's
// rank-bucket items rather than uniform unit vertices.
func TestDeltaTracksFullSolveQuality(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 4000
	items := make([]Item, n)
	var total float64
	for i := range items {
		items[i] = Item{Hot: 1 / float64(i+1), Bytes: float64(1 + r.Intn(8))}
		total += items[i].Bytes
	}
	bins := []Bin{
		{Name: "hbm0", Tier: TierGPU, Capacity: total * 0.05, Traffic: 500},
		{Name: "dram0", Tier: TierCPU, Capacity: total * 0.15, Traffic: 300},
		{Name: "ssd0", Tier: TierSSD, Capacity: total, Traffic: 100},
		{Name: "ssd1", Tier: TierSSD, Capacity: total, Traffic: 100},
	}
	const scale = 1000
	prev, err := PlaceItems(items, bins, 10, scale)
	if err != nil {
		t.Fatal(err)
	}
	drifted := append([]Item(nil), items...)
	for k := 0; k < 200; k++ { // 200 random rank swaps
		i, j := r.Intn(n), r.Intn(n)
		drifted[i].Hot, drifted[j].Hot = drifted[j].Hot, drifted[i].Hot
	}
	res, err := PlaceItemsDelta(items, prev, drifted, bins, 10, scale, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := PlaceItems(drifted, bins, 10, scale)
	if err != nil {
		t.Fatal(err)
	}
	validateItems(t, res.Assignment, drifted)
	dHit := res.Assignment.HitRateItems(TierGPU) + res.Assignment.HitRateItems(TierCPU)
	fHit := full.HitRateItems(TierGPU) + full.HitRateItems(TierCPU)
	if fHit-dHit > 0.05 {
		t.Errorf("delta fast-tier hit %.4f trails full %.4f by more than 0.05", dHit, fHit)
	}
	_, fullBytes := diffMoves(prev, full, drifted)
	if res.MovedBytes >= fullBytes {
		t.Errorf("delta moved %.0f bytes, full re-solve would move %.0f — no savings", res.MovedBytes, fullBytes)
	}
}

func TestDeltaValidation(t *testing.T) {
	items := zipfItems(t, 100)
	bins := deltaBins()
	prev, err := PlaceItems(items, bins, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceItemsDelta(items, nil, items, bins, 10, 0, DeltaOptions{}); err == nil {
		t.Error("nil previous assignment accepted")
	}
	if _, err := PlaceItemsDelta(items[:99], prev, items, bins, 10, 0, DeltaOptions{}); err == nil {
		t.Error("item count change accepted")
	}
	resized := append([]Item(nil), items...)
	resized[5].Bytes = 2
	if _, err := PlaceItemsDelta(items, prev, resized, bins, 10, 0, DeltaOptions{}); err == nil {
		t.Error("per-item byte change accepted")
	}
	if _, err := PlaceItemsDelta(items, prev, items, bins[:3], 10, 0, DeltaOptions{}); err == nil {
		t.Error("bin count change accepted")
	}
	retiered := deltaBins()
	retiered[0].Tier = TierSSD
	if _, err := PlaceItemsDelta(items, prev, items, retiered, 10, 0, DeltaOptions{}); err == nil {
		t.Error("bin tier change accepted")
	}
}
