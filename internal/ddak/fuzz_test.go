package ddak

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzPlaceItemsDelta is the delta-vs-full differential: over fuzz-chosen
// item sets, bin shapes and drift permutations it checks that the
// incremental re-solve
//
//  1. produces a valid assignment over exactly the input bins (same
//     capacities, accounting consistent, nothing over capacity);
//  2. bills migration honestly (MovedItems/MovedBytes match an
//     element-wise diff against the previous layout, and a fallback
//     result is bit-identical to the full PlaceItems solve);
//  3. stays within a bounded fast-tier hit-rate gap of the full
//     re-solve — the delta trades layout optimality for migration
//     bytes, but never collapses.
func FuzzPlaceItemsDelta(f *testing.F) {
	f.Add(int64(1), uint16(200), uint8(0), uint8(10), uint8(10), uint8(0))
	f.Add(int64(2), uint16(500), uint8(1), uint8(50), uint8(1), uint8(1))
	f.Add(int64(3), uint16(1000), uint8(2), uint8(200), uint8(100), uint8(4))
	f.Add(int64(4), uint16(64), uint8(3), uint8(255), uint8(7), uint8(2))
	f.Add(int64(5), uint16(300), uint8(1), uint8(0), uint8(0), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, driftKind, magRaw, poolRaw, scaleRaw uint8) {
		n := int(nRaw)%2000 + 20
		r := rand.New(rand.NewSource(seed))

		// Items: zipf-ish hotness, sizes in [1,8] so capacity repair has
		// real work to do without making fit impossible.
		items := make([]Item, n)
		var totalBytes float64
		for i := range items {
			items[i] = Item{
				Hot:   1 / math.Pow(float64(i+1), 0.5+r.Float64()),
				Bytes: float64(1 + r.Intn(8)),
			}
			totalBytes += items[i].Bytes
		}
		r.Shuffle(n, func(i, j int) { items[i], items[j] = items[j], items[i] })

		// Bins: one GPU, one CPU, two SSDs; total capacity 1.5x the item
		// bytes so placement is feasible but caches stay contended.
		gpuCap := totalBytes * (0.02 + 0.1*r.Float64())
		cpuCap := totalBytes * (0.1 + 0.2*r.Float64())
		ssdCap := totalBytes * 1.5
		bins := []Bin{
			{Name: "g", Tier: TierGPU, Capacity: gpuCap, Traffic: 100 + r.Float64()*900},
			{Name: "c", Tier: TierCPU, Capacity: cpuCap, Traffic: 50 + r.Float64()*500},
			{Name: "s0", Tier: TierSSD, Capacity: ssdCap / 2, Traffic: 10 + r.Float64()*100},
			{Name: "s1", Tier: TierSSD, Capacity: ssdCap / 2, Traffic: 10 + r.Float64()*100},
		}
		pool := int(poolRaw)%100 + 1
		var trafficScale float64
		if scaleRaw%2 == 1 {
			trafficScale = float64(scaleRaw)
		}

		prev, err := PlaceItems(items, bins, pool, trafficScale)
		if err != nil {
			t.Skip() // infeasible shape; not the contract under test
		}

		// Drift: a hotness permutation of fuzz-chosen kind and magnitude.
		drifted := append([]Item(nil), items...)
		mag := int(magRaw)%n + 1
		switch driftKind % 4 {
		case 0: // no drift
		case 1: // random swaps
			for k := 0; k < mag; k++ {
				i, j := r.Intn(n), r.Intn(n)
				drifted[i].Hot, drifted[j].Hot = drifted[j].Hot, drifted[i].Hot
			}
		case 2: // rotate hotness by mag
			hots := make([]float64, n)
			for i := range drifted {
				hots[i] = drifted[(i+mag)%n].Hot
			}
			for i := range drifted {
				drifted[i].Hot = hots[i]
			}
		case 3: // rescale a random prefix (rank flip without permutation)
			for i := 0; i < mag; i++ {
				drifted[i].Hot *= r.Float64()
			}
		}

		res, err := PlaceItemsDelta(items, prev, drifted, bins, pool, trafficScale, DeltaOptions{})
		if err != nil {
			t.Fatalf("delta failed on feasible instance: %v", err)
		}
		a := res.Assignment

		// (1) validity over exactly the input bins.
		if len(a.Bins) != len(bins) {
			t.Fatalf("bin count changed: %d", len(a.Bins))
		}
		for i := range bins {
			if a.Bins[i] != bins[i] {
				t.Fatalf("bin %d mutated: %+v vs %+v", i, a.Bins[i], bins[i])
			}
		}
		used := make([]float64, len(bins))
		access := make([]float64, len(bins))
		for v, b := range a.Of {
			if b < 0 || int(b) >= len(bins) {
				t.Fatalf("item %d in bin %d out of range", v, b)
			}
			used[b] += drifted[v].Bytes
			access[b] += drifted[v].Hot
		}
		for i := range bins {
			if used[i] > bins[i].Capacity*(1+1e-9)+1e-6 {
				t.Fatalf("bin %s over capacity: %.1f > %.1f", bins[i].Name, used[i], bins[i].Capacity)
			}
			if math.Abs(used[i]-a.Used[i]) > 1e-6+1e-9*used[i] {
				t.Fatalf("bin %s used accounting off: %.3f vs %.3f", bins[i].Name, used[i], a.Used[i])
			}
			if math.Abs(access[i]-a.Access[i]) > 1e-6+1e-9*math.Abs(access[i]) {
				t.Fatalf("bin %s access accounting off: %.6f vs %.6f", bins[i].Name, access[i], a.Access[i])
			}
		}

		// (2) honest migration bill.
		moved, movedBytes := 0, 0.0
		for i := range a.Of {
			if a.Of[i] != prev.Of[i] {
				moved++
				movedBytes += drifted[i].Bytes
			}
		}
		if moved != res.MovedItems || math.Abs(movedBytes-res.MovedBytes) > 1e-6 {
			t.Fatalf("migration bill off: reported %d/%.1f, actual %d/%.1f",
				res.MovedItems, res.MovedBytes, moved, movedBytes)
		}
		if !res.FellBack && res.MovedBytes > 0.5*totalBytes+1e-6 {
			t.Fatalf("non-fallback delta moved %.1f of %.1f bytes, over the default budget", res.MovedBytes, totalBytes)
		}

		full, err := PlaceItems(drifted, bins, pool, trafficScale)
		if err != nil {
			t.Fatalf("full solve failed after drift: %v", err)
		}
		if res.FellBack {
			for i := range a.Of {
				if a.Of[i] != full.Of[i] {
					t.Fatalf("fallback result differs from full solve at item %d", i)
				}
			}
		}

		// (3) bounded fast-tier gap vs the full re-solve.
		dHit := a.HitRateItems(TierGPU) + a.HitRateItems(TierCPU)
		fHit := full.HitRateItems(TierGPU) + full.HitRateItems(TierCPU)
		if fHit-dHit > 0.25 {
			t.Fatalf("delta fast-tier hit %.4f trails full %.4f by more than 0.25", dHit, fHit)
		}

		// No drift at all must be a zero-move no-op.
		if driftKind%4 == 0 && res.MovedItems != 0 {
			t.Fatalf("no-drift delta moved %d items", res.MovedItems)
		}
	})
}
