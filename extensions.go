package moment

// Facade for the §5 extensions: multi-node generalization (cluster) and
// adaptive placement for dynamic workloads (adaptive).

import (
	"io"

	"moment/internal/adaptive"
	"moment/internal/cluster"
	"moment/internal/ddak"
	"moment/internal/experiments"
	"moment/internal/flownet"
	"moment/internal/graph"
	"moment/internal/partition"
	"moment/internal/topology"
	"moment/internal/trainsim"
	"moment/internal/units"
)

// Multi-node generalization (§5 "Generalization to Multi-node").
type (
	// ClusterConfig describes a homogeneous multi-node deployment.
	ClusterConfig = cluster.Config
	// ClusterResult is one simulated cluster epoch.
	ClusterResult = cluster.Result
	// ClusterSpec describes the inter-server fabric: node count, NICs per
	// node, NIC bandwidth, leaf/spine shape and oversubscription.
	ClusterSpec = topology.ClusterSpec
	// ClusterDemand is the per-node flow demand plus import/export volumes.
	ClusterDemand = flownet.ClusterDemand
	// ClusterNetwork is the solved whole-cluster flow network.
	ClusterNetwork = flownet.ClusterNetwork
	// ClusterBuildOptions tunes cluster flow-graph construction (e.g. the
	// NIC-on-GPU-socket knob).
	ClusterBuildOptions = flownet.ClusterOptions
)

// BuildClusterNetwork constructs the hierarchical flow network pricing
// intra-PCIe and cross-node traffic in one max-flow solve: per-node
// replicas of the single-machine fabric joined through NIC → leaf →
// spine units.
func BuildClusterNetwork(m *Machine, p *Placement, spec ClusterSpec, d *ClusterDemand, opts ClusterBuildOptions) (*ClusterNetwork, error) {
	return flownet.BuildCluster(m, p, spec, d, opts)
}

// ParseDeployment reads a machine spec file that also carries a `cluster`
// line, returning the per-node machine and the inter-server fabric.
func ParseDeployment(r io.Reader) (*Machine, *ClusterSpec, error) {
	return topology.ParseClusterFile(r)
}

// Cross-node partition scoring (CAGNET layouts) for the cold tail.
type (
	// PartitionSpec selects a CAGNET layout (1D, 1.5D, 2D) over N nodes.
	PartitionSpec = partition.Spec
	// PartitionLayout is the CAGNET layout family.
	PartitionLayout = partition.Layout
	// PartitionVolume is the scored per-epoch communication volume.
	PartitionVolume = partition.Volume
)

// CAGNET layout families for PartitionSpec.
const (
	Partition1D  = partition.Layout1D
	Partition15D = partition.Layout15D
	Partition2D  = partition.Layout2D
)

// ParsePartitionSpec parses the CLI partition grammar ("1d", "1.5d:2",
// "2d", each optionally suffixed "/hash") against a node count.
func ParsePartitionSpec(text string, nodes int) (PartitionSpec, error) {
	return partition.ParseSpec(text, nodes)
}

// ScorePartition computes the exact per-epoch mirror/reduce communication
// volume of a CAGNET layout over a graph.
func ScorePartition(g *graph.Graph, spec PartitionSpec) (PartitionVolume, error) {
	return partition.Score(g, spec)
}

// PartitionRemoteFraction is the fraction of neighbor-feature reads that
// cross the network under a partition — the cluster planner's crossFrac.
func PartitionRemoteFraction(g *graph.Graph, spec PartitionSpec) (float64, error) {
	return partition.RemoteFraction(g, spec)
}

// ReplicationPlan is the replication-axis split of the cold tail: hot head
// pinned into every node, remainder partitioned.
type ReplicationPlan = ddak.ReplicationPlan

// PlanReplication splits items at replication factor r across nodes with
// the given cross-node read fraction for the partitioned tail.
func PlanReplication(items []PlacedItem, r float64, nodes int, crossFrac float64) (ReplicationPlan, error) {
	return ddak.PlanReplication(items, r, nodes, crossFrac)
}

// ClusterBenchRecord benchmarks the multi-node reference (flow-planned
// cluster vs the analytical composition vs DistDGL on 4× Machine B, PA) as
// the "cluster" bench row. It errors if the acceptance differential fails:
// the flow planner must beat DistDGL and agree with the analytical model
// on the non-blocking core.
func ClusterBenchRecord(nodes int) (BenchRecord, error) {
	return experiments.ClusterBenchRecord(nodes)
}

// SimulateCluster runs one epoch of a data-parallel job across a cluster
// of Moment machines: hot data replicated per node, cold data partitioned,
// NICs modeled as full-duplex links into a non-blocking core.
func SimulateCluster(cfg ClusterConfig) (*ClusterResult, error) { return cluster.Simulate(cfg) }

// ClusterSweep simulates the job at every cluster size in nodes.
func ClusterSweep(cfg ClusterConfig, nodes []int) ([]*ClusterResult, error) {
	return cluster.Sweep(cfg, nodes)
}

// Adaptive placement (§5 "Limitations": online profiling + re-placement).
type (
	// AccessMonitor is the lightweight online profiler (decayed counters).
	AccessMonitor = adaptive.Monitor
	// Replanner re-runs DDAK when the live access distribution drifts.
	Replanner = adaptive.Replanner
	// Migration reports one adaptive re-placement.
	Migration = adaptive.Migration
	// StorageBin is a DDAK placement target (capacity + traffic budget).
	StorageBin = ddak.Bin
	// PlacedItem is one DDAK placement unit (hotness + size).
	PlacedItem = ddak.Item
	// ItemAssignment is a DDAK layout over items and bins.
	ItemAssignment = ddak.ItemAssignment
)

// Storage tiers for StorageBin.
const (
	TierGPU = ddak.TierGPU
	TierCPU = ddak.TierCPU
	TierSSD = ddak.TierSSD
)

// NewAccessMonitor tracks n items with the given half-life in batches.
func NewAccessMonitor(n int, halfLifeBatches float64) (*AccessMonitor, error) {
	return adaptive.NewMonitor(n, halfLifeBatches)
}

// NewReplanner plans an initial DDAK layout and re-places when the
// observed distribution drifts beyond threshold (total-variation).
func NewReplanner(hot, itemBytes []float64, bins []StorageBin, poolN int, trafficScale, threshold float64) (*Replanner, error) {
	return adaptive.NewReplanner(hot, itemBytes, bins, poolN, trafficScale, threshold)
}

// DriftTV is the total-variation distance between two access distributions.
func DriftTV(a, b []float64) (float64, error) { return adaptive.TV(a, b) }

// LayoutHitRate is the fast-tier (GPU+CPU) hit fraction of a layout under
// an access distribution.
func LayoutHitRate(a *ddak.ItemAssignment, hot []float64) (float64, error) {
	return adaptive.HitRate(a, hot)
}

// Drift detection and incremental re-placement (the closed adaptive loop:
// monitor → detector → delta DDAK re-solve, with a from-scratch oracle for
// differential evaluation).
type (
	// DriftDetector trips on sustained distribution drift (total-variation
	// plus top-k rank displacement, with hysteresis and cooldown).
	DriftDetector = adaptive.DriftDetector
	// DriftSignal is one detector reading.
	DriftSignal = adaptive.DriftSignal
	// DeltaOptions bounds an incremental DDAK re-solve.
	DeltaOptions = ddak.DeltaOptions
	// DeltaResult is an incremental re-solve with its migration bill.
	DeltaResult = ddak.DeltaResult
	// DriftSchedule is a seeded workload-drift process for simulation.
	DriftSchedule = trainsim.DriftSchedule
	// DriftKind selects the perturbation a DriftSchedule applies.
	DriftKind = trainsim.DriftKind
	// DriftOptions configures a long-horizon drift simulation.
	DriftOptions = trainsim.DriftOptions
	// DriftReport summarizes one adaptive or oracle drift run.
	DriftReport = trainsim.DriftReport
)

// Drift perturbation kinds for DriftSchedule.
const (
	DriftNone      = trainsim.DriftNone
	DriftRotate    = trainsim.DriftRotate
	DriftFlip      = trainsim.DriftFlip
	DriftOscillate = trainsim.DriftOscillate
	DriftShuffle   = trainsim.DriftShuffle
)

// PlaceItems runs the full DDAK traffic-capped pooled greedy over items
// and bins — the from-scratch solve that seeds an adaptive loop before
// PlaceItemsDelta takes over.
func PlaceItems(items []PlacedItem, bins []StorageBin, poolN int, trafficScale float64) (*ItemAssignment, error) {
	return ddak.PlaceItems(items, bins, poolN, trafficScale)
}

// PlaceItemsDelta re-solves a DDAK layout incrementally from a previous
// assignment: unchanged items keep their bins, evictions are repaired and
// profitable promotions applied under opt.MaxMoveFrac, falling back to a
// full solve when the budget cannot absorb the drift.
func PlaceItemsDelta(prevItems []PlacedItem, prev *ItemAssignment, items []PlacedItem, bins []StorageBin, poolN int, trafficScale float64, opt DeltaOptions) (*DeltaResult, error) {
	return ddak.PlaceItemsDelta(prevItems, prev, items, bins, poolN, trafficScale, opt)
}

// LayoutTiers flattens an item assignment to a per-item storage tier
// (0 = GPU, 1 = CPU, 2 = SSD) — the form Sampler locality biasing and
// tier-aware schedulers consume.
func LayoutTiers(a *ItemAssignment) ([]uint8, error) { return adaptive.TierOf(a) }

// SimulateDrift runs a long-horizon training simulation whose hotness
// distribution drifts on a seeded schedule, chased either by the closed
// adaptive loop or (opt.Oracle) by from-scratch re-planning at every event.
func SimulateDrift(cfg SimConfig, opt DriftOptions) (*DriftReport, error) {
	return trainsim.SimulateDriftEpochs(cfg, opt)
}

// ParseDriftSpec parses the CLI drift grammar
// "every=100;kind=shuffle;mag=0.2;seed=7" into a schedule.
func ParseDriftSpec(s string) (DriftSchedule, error) { return trainsim.ParseDriftSpec(s) }

// FormatDriftSpec renders a schedule back into the CLI grammar.
func FormatDriftSpec(s DriftSchedule) string { return trainsim.FormatDriftSpec(s) }

// Pipeline introspection.
type (
	// Timeline is the exact per-iteration pipeline schedule of an epoch.
	Timeline = trainsim.Timeline
	// StageTimes is a per-iteration stage cost triple.
	StageTimes = trainsim.StageTimes
)

// EpochTimeline derives the exact software-pipeline schedule of a
// simulated epoch, keeping the first `keep` rounds for rendering.
func EpochTimeline(r *EpochResult, keep int) (*Timeline, error) {
	return trainsim.TimelineOf(r, keep)
}

// Bandwidth and byte helpers for cluster and custom-machine configs.
var (
	// Gbps builds a network bandwidth from decimal gigabits per second.
	Gbps = units.Gbps
	// GiBps builds a bandwidth from GiB per second.
	GiBps = units.GiBps
	// GB builds a byte size from GiB.
	GB = units.GB
	// TB builds a byte size from TiB.
	TB = units.TB
)
