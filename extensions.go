package moment

// Facade for the §5 extensions: multi-node generalization (cluster) and
// adaptive placement for dynamic workloads (adaptive).

import (
	"moment/internal/adaptive"
	"moment/internal/cluster"
	"moment/internal/ddak"
	"moment/internal/trainsim"
	"moment/internal/units"
)

// Multi-node generalization (§5 "Generalization to Multi-node").
type (
	// ClusterConfig describes a homogeneous multi-node deployment.
	ClusterConfig = cluster.Config
	// ClusterResult is one simulated cluster epoch.
	ClusterResult = cluster.Result
)

// SimulateCluster runs one epoch of a data-parallel job across a cluster
// of Moment machines: hot data replicated per node, cold data partitioned,
// NICs modeled as full-duplex links into a non-blocking core.
func SimulateCluster(cfg ClusterConfig) (*ClusterResult, error) { return cluster.Simulate(cfg) }

// ClusterSweep simulates the job at every cluster size in nodes.
func ClusterSweep(cfg ClusterConfig, nodes []int) ([]*ClusterResult, error) {
	return cluster.Sweep(cfg, nodes)
}

// Adaptive placement (§5 "Limitations": online profiling + re-placement).
type (
	// AccessMonitor is the lightweight online profiler (decayed counters).
	AccessMonitor = adaptive.Monitor
	// Replanner re-runs DDAK when the live access distribution drifts.
	Replanner = adaptive.Replanner
	// Migration reports one adaptive re-placement.
	Migration = adaptive.Migration
	// StorageBin is a DDAK placement target (capacity + traffic budget).
	StorageBin = ddak.Bin
)

// Storage tiers for StorageBin.
const (
	TierGPU = ddak.TierGPU
	TierCPU = ddak.TierCPU
	TierSSD = ddak.TierSSD
)

// NewAccessMonitor tracks n items with the given half-life in batches.
func NewAccessMonitor(n int, halfLifeBatches float64) (*AccessMonitor, error) {
	return adaptive.NewMonitor(n, halfLifeBatches)
}

// NewReplanner plans an initial DDAK layout and re-places when the
// observed distribution drifts beyond threshold (total-variation).
func NewReplanner(hot, itemBytes []float64, bins []StorageBin, poolN int, trafficScale, threshold float64) (*Replanner, error) {
	return adaptive.NewReplanner(hot, itemBytes, bins, poolN, trafficScale, threshold)
}

// DriftTV is the total-variation distance between two access distributions.
func DriftTV(a, b []float64) (float64, error) { return adaptive.TV(a, b) }

// LayoutHitRate is the fast-tier (GPU+CPU) hit fraction of a layout under
// an access distribution.
func LayoutHitRate(a *ddak.ItemAssignment, hot []float64) (float64, error) {
	return adaptive.HitRate(a, hot)
}

// Pipeline introspection.
type (
	// Timeline is the exact per-iteration pipeline schedule of an epoch.
	Timeline = trainsim.Timeline
	// StageTimes is a per-iteration stage cost triple.
	StageTimes = trainsim.StageTimes
)

// EpochTimeline derives the exact software-pipeline schedule of a
// simulated epoch, keeping the first `keep` rounds for rendering.
func EpochTimeline(r *EpochResult, keep int) (*Timeline, error) {
	return trainsim.TimelineOf(r, keep)
}

// Bandwidth and byte helpers for cluster and custom-machine configs.
var (
	// Gbps builds a network bandwidth from decimal gigabits per second.
	Gbps = units.Gbps
	// GiBps builds a bandwidth from GiB per second.
	GiBps = units.GiBps
	// GB builds a byte size from GiB.
	GB = units.GB
	// TB builds a byte size from TiB.
	TB = units.TB
)
