module moment

go 1.22
