package moment

import (
	"strings"
	"testing"
)

func TestOptimizeQuickstart(t *testing.T) {
	plan, err := Optimize(MachineB(), Workload{Dataset: MustDataset("IG"), Model: GraphSAGE})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Placement == nil || plan.Epoch == nil {
		t.Fatal("incomplete plan")
	}
	if !strings.Contains(plan.Report(), "selected placement") {
		t.Error("report incomplete")
	}
}

func TestFacadeRoundTrips(t *testing.T) {
	m := MachineA()
	spec := FormatMachine(m)
	back, err := ParseMachine(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "A" || back.NumGPUs != 4 {
		t.Errorf("round trip lost identity: %+v", back)
	}
	if len(Datasets()) != 4 {
		t.Error("catalog size changed")
	}
	if _, err := DatasetByName("UK"); err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDataset should panic on unknown name")
		}
	}()
	MustDataset("nope")
}

func TestSimulateClassicLayout(t *testing.T) {
	m := MachineA()
	p, err := ClassicPlacement(m, LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(SimConfig{Machine: m, Placement: p,
		Workload: Workload{Dataset: MustDataset("PA"), Model: GAT}})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != "" || r.EpochTime <= 0 {
		t.Errorf("bad result: %+v", r)
	}
}

func TestBaselineFacade(t *testing.T) {
	m := MachineA()
	p, err := ClassicPlacement(m, LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Dataset: MustDataset("PA"), Model: GraphSAGE}
	if _, err := MGIDS(m, p, w); err != nil {
		t.Error(err)
	}
	if _, err := MHyperion(m, p, w); err != nil {
		t.Error(err)
	}
	if _, err := DistDGL(MachineC(), DefaultDistDGL(), w); err != nil {
		t.Error(err)
	}
	if _, err := PublishedPlacementB(MachineB()); err != nil {
		t.Error(err)
	}
}
