package moment

import (
	"moment/internal/core"
	"moment/internal/obs"
)

// Observability types, re-exported from the internal obs package so callers
// can trace and meter the planner without importing internals.
type (
	// Observer collects spans (Chrome trace-event JSON) and metrics
	// (counters, gauges, histograms with Prometheus-text and JSON
	// exposition). A nil *Observer is fully disabled at zero cost.
	Observer = obs.Observer
	// TraceSpan is one traced operation; obtain them from Observer.Begin.
	TraceSpan = obs.Span
	// MetricLabel is one metric dimension (see Label).
	MetricLabel = obs.Label

	// FlightRecorder is the forensic event ring: a fixed-size, lock-light
	// buffer of structured wide events (admission decisions, cache
	// hits/misses, fault transitions, probe aborts, span completions),
	// cheap enough to leave on in production and dumpable as JSON. Enable
	// one on an Observer with Observer.EnableFlight; a nil recorder ignores
	// Record at zero cost.
	FlightRecorder = obs.FlightRecorder
	// FlightEvent is one wide flight-recorder event; FlightEventKind
	// classifies it (FlightSpan, FlightAdmission, ...).
	FlightEvent     = obs.Event
	FlightEventKind = obs.EventKind

	// Explain is a plan-provenance trail: the search and layout stages
	// append one ExplainStep per decision (candidate pruned and why,
	// cache verdicts, bisector effort, final score breakdown), and the
	// trail renders deterministically for a fixed request. Attach one via
	// SearchOptions.Explain; nil costs nothing.
	Explain     = obs.Explain
	ExplainStep = obs.ExplainStep

	// Watchdog runs anomaly rules (WatchdogRule) over an observer's
	// metrics on a timer and, on a trip (WatchdogTrip), snapshots the
	// flight ring plus goroutine/heap profiles into a diagnostics bundle.
	Watchdog     = obs.Watchdog
	WatchdogRule = obs.Rule
	WatchdogTrip = obs.Trip

	// LabelCap bounds a set of caller-controlled label values, aggregating
	// overflow under "other" so unbounded inputs (tenants, error strings)
	// cannot explode metric or event cardinality.
	LabelCap = obs.LabelCap
)

// Flight-event kinds, re-exported for building FlightEvents by hand.
const (
	FlightSpan       = obs.EvSpan
	FlightAdmission  = obs.EvAdmission
	FlightFault      = obs.EvFault
	FlightCache      = obs.EvCache
	FlightProbeAbort = obs.EvProbeAbort
	FlightWatchdog   = obs.EvWatchdog
	FlightDrain      = obs.EvDrain
)

// ExplainSeqSummary is the ExplainStep.Seq value that orders run-level
// summary steps after every per-candidate step in a rendered trail.
const ExplainSeqSummary = obs.SeqSummary

// Watchdog rule kinds: a gauge ceiling, a counter delta per check, and a
// regression against a learned EWMA baseline.
const (
	WatchdogMax      = obs.RuleMax
	WatchdogDeltaMax = obs.RuleDeltaMax
	WatchdogRegress  = obs.RuleRegress
)

// NewFlightRecorder returns a standalone flight ring holding the most
// recent size events (<= 0 defaults to 4096). Most callers want
// Observer.EnableFlight instead, which also records span completions.
func NewFlightRecorder(size int) *FlightRecorder { return obs.NewFlightRecorder(size) }

// NewExplain returns an empty provenance trail for SearchOptions.Explain.
func NewExplain() *Explain { return obs.NewExplain() }

// NewLabelCap returns a label-cardinality bound admitting at most max
// distinct values (<= 0 defaults to 32).
func NewLabelCap(max int) *LabelCap { return obs.NewLabelCap(max) }

// NewObserver returns an enabled observer. Pass it via WithObserver (or the
// Observer fields on SearchOptions / SimConfig), then export with
// Observer.WriteTrace, WritePrometheus, or WriteMetricsJSON.
func NewObserver() *Observer { return obs.New() }

// Label builds a metric label, e.g. Label("bin", "hbm0").
func Label(key, value string) MetricLabel { return obs.L(key, value) }

// SetDefaultObserver installs a process-wide fallback observer used by any
// planner entry point whose caller did not inject one (nil disables). Use
// it to instrument code paths — like the experiment generators — that do
// not thread options.
func SetDefaultObserver(o *Observer) { obs.SetDefault(o) }

// DefaultObserver returns the process-wide fallback observer, or nil.
func DefaultObserver() *Observer { return obs.Default() }

// Option customizes an Optimize run.
type Option func(*core.Input)

// WithObserver routes the run's spans and metrics — placement enumeration
// and pruning, max-flow scoring, DDAK bin fills, the simulated epoch — to o.
func WithObserver(o *Observer) Option {
	return func(in *core.Input) { in.Observer = o }
}

// WithSearchOptions sets the placement-search knobs.
func WithSearchOptions(opts SearchOptions) Option {
	return func(in *core.Input) { in.Search = opts }
}

// WithSimConfig sets the epoch-simulation knobs other than
// machine/placement (policy, cache mode, pooling, ...).
func WithSimConfig(cfg SimConfig) Option {
	return func(in *core.Input) { in.Sim = cfg }
}
