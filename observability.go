package moment

import (
	"moment/internal/core"
	"moment/internal/obs"
)

// Observability types, re-exported from the internal obs package so callers
// can trace and meter the planner without importing internals.
type (
	// Observer collects spans (Chrome trace-event JSON) and metrics
	// (counters, gauges, histograms with Prometheus-text and JSON
	// exposition). A nil *Observer is fully disabled at zero cost.
	Observer = obs.Observer
	// TraceSpan is one traced operation; obtain them from Observer.Begin.
	TraceSpan = obs.Span
	// MetricLabel is one metric dimension (see Label).
	MetricLabel = obs.Label
)

// NewObserver returns an enabled observer. Pass it via WithObserver (or the
// Observer fields on SearchOptions / SimConfig), then export with
// Observer.WriteTrace, WritePrometheus, or WriteMetricsJSON.
func NewObserver() *Observer { return obs.New() }

// Label builds a metric label, e.g. Label("bin", "hbm0").
func Label(key, value string) MetricLabel { return obs.L(key, value) }

// SetDefaultObserver installs a process-wide fallback observer used by any
// planner entry point whose caller did not inject one (nil disables). Use
// it to instrument code paths — like the experiment generators — that do
// not thread options.
func SetDefaultObserver(o *Observer) { obs.SetDefault(o) }

// DefaultObserver returns the process-wide fallback observer, or nil.
func DefaultObserver() *Observer { return obs.Default() }

// Option customizes an Optimize run.
type Option func(*core.Input)

// WithObserver routes the run's spans and metrics — placement enumeration
// and pruning, max-flow scoring, DDAK bin fills, the simulated epoch — to o.
func WithObserver(o *Observer) Option {
	return func(in *core.Input) { in.Observer = o }
}

// WithSearchOptions sets the placement-search knobs.
func WithSearchOptions(opts SearchOptions) Option {
	return func(in *core.Input) { in.Search = opts }
}

// WithSimConfig sets the epoch-simulation knobs other than
// machine/placement (policy, cache mode, pooling, ...).
func WithSimConfig(cfg SimConfig) Option {
	return func(in *core.Input) { in.Sim = cfg }
}
