// Command momentopt runs Moment's automatic module (the paper's
// automatic_module.py): it profiles a machine, searches hardware
// placements by max-flow, lays out data with DDAK, and prints the plan.
//
// Usage:
//
//	momentopt -machine B -dataset IG -model graphsage
//	momentopt -spec server.spec -dataset UK -model gat -scores
//	momentopt -machine B -dataset IG -trace trace.json -metrics
//	momentopt -machine B -dataset PA -explain
//
// -explain prints the plan's provenance trail — every candidate the search
// enumerated, pruned (and why), the bisector's effort per candidate, and
// the final score and layout breakdown. The trail is byte-deterministic
// for a fixed machine/workload (it forces a serial, uncached search), so
// two runs of the same problem diff clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"moment"
	"moment/cmd/internal/obsflag"
)

func main() {
	var (
		machineName = flag.String("machine", "B", "built-in machine: A, B or C")
		specPath    = flag.String("spec", "", "machine spec file (overrides -machine)")
		dataset     = flag.String("dataset", "IG", "dataset: PA, IG, UK or CL")
		model       = flag.String("model", "graphsage", "model: graphsage or gat")
		gpus        = flag.Int("gpus", 0, "restrict GPU count (0 = machine default)")
		scores      = flag.Bool("scores", false, "print every candidate's predicted time")
		explain     = flag.Bool("explain", false,
			"print the plan provenance trail (deterministic; forces a serial search)")
		verifyPlan = flag.Bool("verify", false, "self-check every solve: certify max-flows and audit placements")
	)
	oflags := obsflag.Register()
	flag.Parse()
	oflags.Enable()

	if *verifyPlan {
		moment.EnableSelfChecks()
	}

	m, err := loadMachine(*machineName, *specPath)
	if err != nil {
		fatal(err)
	}
	if *gpus > 0 {
		m = m.WithGPUs(*gpus)
	}
	ds, err := moment.DatasetByName(strings.ToUpper(*dataset))
	if err != nil {
		fatal(err)
	}
	kind := moment.GraphSAGE
	if strings.EqualFold(*model, "gat") {
		kind = moment.GAT
	}

	opts := moment.SearchOptions{KeepScores: *scores}
	var ex *moment.Explain
	if *explain {
		ex = moment.NewExplain()
		opts.Explain = ex
		opts.Serial = true // parallel search interleaves; the trail must not
	}
	plan, err := moment.OptimizeWith(m, moment.Workload{Dataset: ds, Model: kind}, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(plan.Report())
	if *scores {
		fmt.Println("candidate predicted epoch IO times: (see plan report above)")
	}
	if ex != nil {
		fmt.Println("--- explain ---")
		fmt.Print(ex.Render())
	}
	if err := oflags.Flush(); err != nil {
		fatal(err)
	}
}

func loadMachine(name, spec string) (*moment.Machine, error) {
	if spec != "" {
		f, err := os.Open(spec)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return moment.ParseMachine(f)
	}
	switch strings.ToUpper(name) {
	case "A":
		return moment.MachineA(), nil
	case "B":
		return moment.MachineB(), nil
	case "C":
		return moment.MachineC(), nil
	}
	return nil, fmt.Errorf("unknown machine %q (want A, B, C or -spec)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "momentopt:", err)
	os.Exit(1)
}
