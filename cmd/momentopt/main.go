// Command momentopt runs Moment's automatic module (the paper's
// automatic_module.py): it profiles a machine, searches hardware
// placements by max-flow, lays out data with DDAK, and prints the plan.
//
// Usage:
//
//	momentopt -machine B -dataset IG -model graphsage
//	momentopt -spec server.spec -dataset UK -model gat -scores
//	momentopt -machine B -dataset IG -trace trace.json -metrics
//	momentopt -machine B -dataset PA -explain
//	momentopt -spec deploy.spec -dataset PA -replication 0.25
//
// When the -spec file carries a `cluster ...` line (node count, NICs,
// leaf/spine shape), the single-node plan is followed by a multi-node flow
// plan: the planned placement replicated across the cluster and priced by
// one whole-cluster max-flow solve.
//
// -explain prints the plan's provenance trail — every candidate the search
// enumerated, pruned (and why), the bisector's effort per candidate, and
// the final score and layout breakdown. The trail is byte-deterministic
// for a fixed machine/workload (it forces a serial, uncached search), so
// two runs of the same problem diff clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"moment"
	"moment/cmd/internal/obsflag"
)

func main() {
	var (
		machineName = flag.String("machine", "B", "built-in machine: A, B or C")
		specPath    = flag.String("spec", "", "machine spec file (overrides -machine)")
		dataset     = flag.String("dataset", "IG", "dataset: PA, IG, UK or CL")
		model       = flag.String("model", "graphsage", "model: graphsage or gat")
		gpus        = flag.Int("gpus", 0, "restrict GPU count (0 = machine default)")
		scores      = flag.Bool("scores", false, "print every candidate's predicted time")
		explain     = flag.Bool("explain", false,
			"print the plan provenance trail (deterministic; forces a serial search)")
		verifyPlan = flag.Bool("verify", false, "self-check every solve: certify max-flows and audit placements")
		repl       = flag.Float64("replication", 0,
			"replication factor r in [0,1] for the multi-node plan of a cluster -spec")
	)
	oflags := obsflag.Register()
	flag.Parse()
	oflags.Enable()

	if *verifyPlan {
		moment.EnableSelfChecks()
	}

	m, cspec, err := loadMachine(*machineName, *specPath)
	if err != nil {
		fatal(err)
	}
	if *gpus > 0 {
		m = m.WithGPUs(*gpus)
	}
	ds, err := moment.DatasetByName(strings.ToUpper(*dataset))
	if err != nil {
		fatal(err)
	}
	kind := moment.GraphSAGE
	if strings.EqualFold(*model, "gat") {
		kind = moment.GAT
	}

	opts := moment.SearchOptions{KeepScores: *scores}
	var ex *moment.Explain
	if *explain {
		ex = moment.NewExplain()
		opts.Explain = ex
		opts.Serial = true // parallel search interleaves; the trail must not
	}
	plan, err := moment.OptimizeWith(m, moment.Workload{Dataset: ds, Model: kind}, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(plan.Report())
	if *scores {
		fmt.Println("candidate predicted epoch IO times: (see plan report above)")
	}
	if ex != nil {
		fmt.Println("--- explain ---")
		fmt.Print(ex.Render())
	}
	if cspec != nil {
		r, err := moment.SimulateCluster(moment.ClusterConfig{
			Node:        m,
			Nodes:       cspec.Nodes,
			NICBW:       cspec.NICBW,
			Workload:    moment.Workload{Dataset: ds, Model: kind},
			Placement:   plan.Placement,
			Flow:        true,
			Cluster:     cspec,
			Replication: *repl,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println("--- multi-node plan ---")
		if r.OOM != "" {
			fmt.Printf("cluster(%d): OOM (%s)\n", cspec.Nodes, r.OOM)
		} else {
			fmt.Printf("cluster %d nodes, %d NIC(s)/node @ %.0f GiB/s, %d leaf(s): epoch %v (flow)\n",
				cspec.Nodes, max(cspec.NICsPerNode, 1), cspec.NICBW.GiBpsf(), max(cspec.Leaves, 1), r.EpochTime)
			fmt.Printf("  local io %v, nic stage %v, joint horizon %v\n", r.LocalIO, r.NICTime, r.FlowTime)
			fmt.Printf("  remote %.1f GiB/node/epoch at r=%.2f; throughput %.0f vertices/s\n",
				r.RemoteBytes/(1<<30), *repl, r.Throughput)
		}
	} else if *repl != 0 {
		fatal(fmt.Errorf("-replication needs a -spec file with a cluster line"))
	}
	if err := oflags.Flush(); err != nil {
		fatal(err)
	}
}

func loadMachine(name, spec string) (*moment.Machine, *moment.ClusterSpec, error) {
	if spec != "" {
		f, err := os.Open(spec)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		return moment.ParseDeployment(f)
	}
	switch strings.ToUpper(name) {
	case "A":
		return moment.MachineA(), nil, nil
	case "B":
		return moment.MachineB(), nil, nil
	case "C":
		return moment.MachineC(), nil, nil
	}
	return nil, nil, fmt.Errorf("unknown machine %q (want A, B, C or -spec)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "momentopt:", err)
	os.Exit(1)
}
