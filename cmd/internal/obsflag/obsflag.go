// Package obsflag wires the shared observability command-line flags
// (-trace, -metrics, -listen, -flight) into the moment commands: it
// installs a process-wide observer when any flag is set, optionally serves
// the live registry over HTTP while the command runs, and flushes the
// collected trace, metrics and flight-recorder dump when the command
// finishes.
package obsflag

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"moment"
)

// Flags holds the registered observability flags.
type Flags struct {
	tracePath   string
	metrics     bool
	metricsJSON string
	listenAddr  string
	flightPath  string
	obs         *moment.Observer
}

// Register adds -trace, -metrics, -metrics-json and -listen to the default
// flag set. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.tracePath, "trace", "",
		"write a Chrome trace-event JSON file (open in Perfetto or chrome://tracing)")
	flag.BoolVar(&f.metrics, "metrics", false,
		"dump collected metrics in Prometheus text format to stdout on exit")
	flag.StringVar(&f.metricsJSON, "metrics-json", "",
		"write collected metrics as JSON to this file on exit")
	flag.StringVar(&f.listenAddr, "listen", "",
		"serve live /metrics and /debug/trace on this address for the run's duration")
	flag.StringVar(&f.flightPath, "flight", "",
		"enable the flight recorder and write its JSON dump to this file on exit")
	return f
}

// FaultFlag holds the registered -faults flag.
type FaultFlag struct {
	spec string
}

// RegisterFaults adds the shared -faults flag (fault-injection spec; see
// the grammar in moment.ParseFaultSpec). Call before flag.Parse.
func RegisterFaults() *FaultFlag {
	f := &FaultFlag{}
	flag.StringVar(&f.spec, "faults", "",
		`inject hardware faults, e.g. "seed=7;kill:ssd2@30;throttle:ssd1@10x0.5+20"`)
	return f
}

// Schedule parses the flag value. Returns (nil, nil) when the flag is
// unset or names an empty schedule.
func (f *FaultFlag) Schedule() (*moment.FaultSchedule, error) {
	if f.spec == "" {
		return nil, nil
	}
	s, err := moment.ParseFaultSpec(f.spec)
	if err != nil {
		return nil, err
	}
	if s.Empty() {
		return nil, nil
	}
	return s, nil
}

// Enable installs the process-wide observer when any observability flag is
// set and returns it (nil when observability is off). Call after flag.Parse
// and before doing work; diagnostics are routed to stderr.
//
// With -listen, the live registry is also served over HTTP (the same
// moment.ObsMux exposition momentd mounts, so scrapes are format-identical
// across one-shot runs and the daemon) until the process exits — the escape
// hatch for watching a long experiment from a dashboard.
func (f *Flags) Enable() *moment.Observer {
	if f.tracePath == "" && !f.metrics && f.metricsJSON == "" && f.listenAddr == "" &&
		f.flightPath == "" {
		return nil
	}
	f.obs = moment.NewObserver()
	f.obs.SetLogOutput(os.Stderr)
	if f.flightPath != "" {
		f.obs.EnableFlight(0) // default ring size
	}
	moment.SetDefaultObserver(f.obs)
	if f.listenAddr != "" {
		ln, err := net.Listen("tcp", f.listenAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obsflag: -listen:", err)
		} else {
			fmt.Fprintf(os.Stderr, "serving /metrics and /debug/trace on %s\n", ln.Addr())
			go func() {
				srv := &http.Server{Handler: moment.ObsMux(f.obs)}
				if err := srv.Serve(ln); err != nil {
					fmt.Fprintln(os.Stderr, "obsflag: -listen:", err)
				}
			}()
		}
	}
	return f.obs
}

// Flush writes the trace file and metric dumps requested by the flags.
// Safe to call when observability is off (no-op).
func (f *Flags) Flush() error {
	if f.obs == nil {
		return nil
	}
	if f.tracePath != "" {
		w, err := os.Create(f.tracePath)
		if err != nil {
			return err
		}
		if err := f.obs.WriteTrace(w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d spans)\n",
			f.tracePath, f.obs.Tracer().Len())
	}
	if f.metrics {
		fmt.Println("--- metrics ---")
		if err := f.obs.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	if f.metricsJSON != "" {
		w, err := os.Create(f.metricsJSON)
		if err != nil {
			return err
		}
		if err := f.obs.WriteMetricsJSON(w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	if f.flightPath != "" {
		w, err := os.Create(f.flightPath)
		if err != nil {
			return err
		}
		if err := f.obs.Flight().WriteJSON(w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "flight dump written to %s (%d events, %d dropped)\n",
			f.flightPath, f.obs.Flight().Len(), f.obs.Flight().Dropped())
	}
	return nil
}
