// Command momentd serves the Moment planner as a long-running multi-tenant
// daemon: POST /v1/plan takes a machine spec + workload (+ optional fault
// schedule) and returns the co-optimized placement, DDAK layout and
// simulated epoch. Identical concurrent requests coalesce into one planner
// run, completed plans are cached across tenants, and overload is shed
// with 429 + Retry-After instead of queued into timeouts.
//
// Endpoints:
//
//	POST /v1/plan      planning requests (JSON; see moment.PlanRequest)
//	POST /v1/explain   plan provenance: the full decision trail for one
//	                   request, byte-deterministic for a fixed problem
//	GET  /v1/stats     operational snapshot (JSON)
//	GET  /metrics      Prometheus text exposition
//	GET  /debug/trace  Chrome trace-event JSON of recent spans
//	GET  /debug/flight flight-recorder ring as JSON (see -flight-events)
//	GET  /debug/pprof/ runtime profiles
//	GET  /healthz      200 ok, 503 while draining
//
// With -watchdog-dir, an anomaly watchdog checks the metrics registry on a
// timer (shed storms, queue saturation, epoch-time regressions, warm-abort
// storms) and on a trip snapshots the flight ring + metrics + profiles
// into a timestamped diagnostics bundle under that directory.
//
// SIGINT/SIGTERM triggers a graceful drain: intake stops (new plans get
// 503, /healthz flips so load balancers eject the instance), queued
// flights finish, the watchdog runs one final check, and the shared
// observability flags (-trace, -flight, ...) flush their dumps before the
// HTTP listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"moment"
	"moment/cmd/internal/obsflag"
)

func main() {
	addr := flag.String("addr", ":7343", "listen address")
	workers := flag.Int("workers", 0, "concurrent planner runs (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 0, "queued runs before shedding (0 = 4x workers)")
	tenantLimit := flag.Int("tenant-limit", 0,
		"per-tenant outstanding request limit (0 = default 8, negative = unlimited)")
	planCache := flag.Int("plan-cache", 0, "plan cache entries (0 = default 256)")
	scoreCache := flag.Int("score-cache", 0, "shared score cache entries (0 = default 16384)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = 60s)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on client deadlines (0 = 5m)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long a SIGTERM drain may wait for queued runs")
	flightEvents := flag.Int("flight-events", 4096,
		"flight-recorder ring size (events kept for /debug/flight and watchdog bundles; 0 disables)")
	watchdogDir := flag.String("watchdog-dir", "",
		"enable the anomaly watchdog and write diagnostics bundles under this directory")
	watchdogInterval := flag.Duration("watchdog-interval", 0, "watchdog check period (0 = 5s)")
	watchdogCooldown := flag.Duration("watchdog-cooldown", 0,
		"minimum gap between diagnostics bundles (0 = 1m)")
	oflags := obsflag.Register()
	flag.Parse()

	srv := moment.NewPlanServer(moment.PlanServerConfig{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		TenantConcurrency: *tenantLimit,
		PlanCacheEntries:  *planCache,
		ScoreCacheEntries: *scoreCache,
		DefaultDeadline:   *deadline,
		MaxDeadline:       *maxDeadline,
		FlightEvents:      *flightEvents,
		WatchdogDir:       *watchdogDir,
		WatchdogInterval:  *watchdogInterval,
		WatchdogCooldown:  *watchdogCooldown,
		Observer:          oflags.Enable(),
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "momentd: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "momentd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "momentd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "momentd: drain:", err)
	}
	// Final forensics flush: with -trace/-flight/-metrics set, the drained
	// daemon leaves its trace and a last flight-recorder dump behind.
	if err := oflags.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "momentd: flush:", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "momentd: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "momentd: stopped")
}
