// Command momentsim simulates one training epoch for an explicit machine,
// hardware placement and workload — the runtime half of the system, useful
// for what-if exploration without rerunning the full optimizer.
//
// Usage:
//
//	momentsim -machine A -layout c -dataset IG -model graphsage
//	momentsim -machine B -layout moment -dataset CL -model gat -policy hash
//	momentsim -machine A -layout c -baseline mgids
//	momentsim -machine B -layout moment -trace trace.json -metrics
//	momentsim -machine A -layout c -dataset PA -faults "seed=7;kill:ssd2@2"
//	momentsim -machine B -layout moment -flight flight.json
//	momentsim -machine B -layout c -drift "every=100;kind=shuffle;mag=0.2;seed=7" -epochs 300
//	momentsim -machine B -layout c -drift "every=100;kind=flip;mag=0.2" -drift-oracle
//	momentsim -machine B -layout moment -dataset PA -cluster 4 -replication 0.25
//	momentsim -machine B -layout c -cluster 4 -cluster-flow -leaves 2 -leaf-uplink 150
//	momentsim -machine B -layout c -cluster 4 -cluster-flow -partition 1.5d:2 -nic-on-gpu-socket
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"moment"
	"moment/cmd/internal/obsflag"
)

func main() {
	var (
		machineName = flag.String("machine", "A", "machine: A or B")
		layout      = flag.String("layout", "c", "placement: a, b, c, d, or moment (search)")
		dataset     = flag.String("dataset", "IG", "dataset: PA, IG, UK or CL")
		model       = flag.String("model", "graphsage", "model: graphsage, gat or gcn")
		gpus        = flag.Int("gpus", 0, "restrict GPU count (0 = machine default)")
		policy      = flag.String("policy", "ddak", "data placement: ddak or hash")
		baseline    = flag.String("baseline", "", "simulate a baseline instead: mgids, mhyperion or distdgl")
		timeline    = flag.Bool("timeline", false, "render the per-iteration pipeline schedule")
		drift       = flag.String("drift", "",
			`drift schedule for a multi-epoch adaptive run, e.g. "every=100;kind=shuffle;mag=0.2;seed=7" (kinds: rotate, flip, oscillate, shuffle)`)
		driftEpochs = flag.Int("epochs", 300, "horizon for -drift runs")
		driftOracle = flag.Bool("drift-oracle", false,
			"replace the adaptive loop with from-scratch replanning at every drift event")
		clusterN = flag.Int("cluster", 0,
			"simulate the job data-parallel across this many nodes (0 = single machine)")
		clusterFlow = flag.Bool("cluster-flow", false,
			"price the whole cluster with one max-flow solve instead of the analytical network stage")
		nicGbps = flag.Float64("nicbw", 100, "per-node NIC bandwidth in Gb/s for -cluster")
		repl    = flag.Float64("replication", 0,
			"replication factor r in [0,1]: fraction of the SSD tier whose hot head is pinned into every node")
		partSpec = flag.String("partition", "",
			`CAGNET cold-tail layout for -cluster: "1d", "1.5d:2" or "2d", optionally "/hash" (scored on a scaled dataset instance)`)
		leaves = flag.Int("leaves", 0,
			"leaf switch count for -cluster (0 = one non-blocking core switch)")
		leafUplink = flag.Float64("leaf-uplink", 0,
			"per-leaf spine uplink bandwidth in Gb/s for -cluster (0 = non-blocking)")
		nicOnSocket = flag.Bool("nic-on-gpu-socket", false,
			"attach each NIC to the PCIe fabric so exports contend with local traffic (needs -cluster-flow)")
	)
	oflags := obsflag.Register()
	fflag := obsflag.RegisterFaults()
	flag.Parse()
	oflags.Enable()
	// Flush on every non-fatal exit path (fatal exits skip the dumps).
	defer func() {
		if err := oflags.Flush(); err != nil {
			fatal(err)
		}
	}()

	var m *moment.Machine
	switch strings.ToUpper(*machineName) {
	case "A":
		m = moment.MachineA()
	case "B":
		m = moment.MachineB()
	default:
		fatal(fmt.Errorf("unknown machine %q", *machineName))
	}
	if *gpus > 0 {
		m = m.WithGPUs(*gpus)
	}
	ds, err := moment.DatasetByName(strings.ToUpper(*dataset))
	if err != nil {
		fatal(err)
	}
	kind := moment.GraphSAGE
	switch {
	case strings.EqualFold(*model, "gat"):
		kind = moment.GAT
	case strings.EqualFold(*model, "gcn"):
		kind = moment.GCN
	}
	w := moment.Workload{Dataset: ds, Model: kind}

	if strings.EqualFold(*baseline, "distdgl") {
		r, err := moment.DistDGL(moment.MachineC(), moment.DefaultDistDGL(), w)
		if err != nil {
			fatal(err)
		}
		if r.OOM != "" {
			fmt.Printf("distdgl: OOM (%s)\n", r.OOM)
			return
		}
		fmt.Printf("distdgl: epoch %v (sample %v, net %v, compute %v), %.0f vertices/s\n",
			r.EpochTime, r.SampleTime, r.NetTime, r.ComputeT, r.Throughput)
		return
	}

	p, err := pickPlacement(m, *layout, w)
	if err != nil {
		fatal(err)
	}

	if *clusterN > 0 {
		if *baseline != "" {
			fatal(fmt.Errorf("-cluster only applies to the plain simulation, not baseline %q", *baseline))
		}
		if err := runCluster(m, p, w, ds, clusterFlags{
			nodes:       *clusterN,
			flow:        *clusterFlow,
			nicGbps:     *nicGbps,
			replication: *repl,
			partition:   *partSpec,
			leaves:      *leaves,
			leafUplink:  *leafUplink,
			nicOnSocket: *nicOnSocket,
		}); err != nil {
			fatal(err)
		}
		return
	}
	if *clusterFlow || *nicOnSocket || *partSpec != "" {
		fatal(fmt.Errorf("-cluster-flow, -nic-on-gpu-socket and -partition require -cluster N"))
	}

	schedule, err := fflag.Schedule()
	if err != nil {
		fatal(err)
	}
	if schedule != nil && *baseline != "" {
		fatal(fmt.Errorf("-faults only applies to the plain simulation, not baseline %q", *baseline))
	}

	if *drift != "" {
		if *baseline != "" {
			fatal(fmt.Errorf("-drift only applies to the plain simulation, not baseline %q", *baseline))
		}
		if schedule != nil {
			fatal(fmt.Errorf("-drift and -faults cannot be combined"))
		}
		sched, err := moment.ParseDriftSpec(*drift)
		if err != nil {
			fatal(err)
		}
		cfg := moment.SimConfig{Machine: m, Placement: p, Workload: w, Cache: moment.CachePartitioned}
		rep, err := moment.SimulateDrift(cfg, moment.DriftOptions{
			Epochs:   *driftEpochs,
			Schedule: sched,
			Oracle:   *driftOracle,
		})
		if err != nil {
			fatal(err)
		}
		mode := "adaptive"
		if rep.Oracle {
			mode = "oracle"
		}
		fmt.Printf("placement %s\n", p)
		fmt.Printf("drift %s: %s over %d epochs, %d events\n",
			mode, moment.FormatDriftSpec(sched), rep.Epochs, rep.DriftEvents)
		fmt.Printf("epoch mean %.3fs, total %v (%d fabric sims, %d memo hits)\n",
			rep.MeanEpoch, rep.Total, rep.Resims, rep.CacheHits)
		fmt.Printf("loop: %d trips, %d replans (%d delta, %d full, %d payback-skipped)\n",
			rep.Trips, rep.Replans, rep.DeltaSolves, rep.FullSolves, rep.Skipped)
		fmt.Printf("migration: %.1f GiB moved, stall %.2fs; final fast-tier hit %.1f%%\n",
			rep.MovedBytes/(1<<30), rep.StallSeconds, rep.FinalHitFast*100)
		return
	}

	var r *moment.EpochResult
	switch strings.ToLower(*baseline) {
	case "":
		cfg := moment.SimConfig{Machine: m, Placement: p, Workload: w, Faults: schedule}
		if strings.EqualFold(*policy, "hash") {
			cfg.Policy = moment.PolicyHash
		}
		r, err = moment.Simulate(cfg)
	case "mgids":
		r, err = moment.MGIDS(m, p, w)
	case "mhyperion":
		r, err = moment.MHyperion(m, p, w)
	default:
		fatal(fmt.Errorf("unknown baseline %q", *baseline))
	}
	if err != nil {
		fatal(err)
	}
	if r.OOM != "" {
		fmt.Printf("%s: OOM (%s)\n", p.Name, r.OOM)
		return
	}
	fmt.Printf("placement %s\n", p)
	fmt.Printf("epoch %v (io %v, predicted io %v, compute %v, sample %v)\n",
		r.EpochTime, r.IOTime, r.PredictedIO, r.ComputeTime, r.SampleTime)
	fmt.Printf("throughput %.0f vertices/s; cache hits gpu %.1f%%, cpu %.1f%%; qpi %.1f GiB\n",
		r.Throughput, r.HitGPU*100, r.HitCPU*100, r.QPIBytes/(1<<30))
	for g, bw := range r.PerGPUIOBW {
		fmt.Printf("  gpu%d inlet %v\n", g, bw)
	}
	if rep := r.Faults; rep != nil {
		fmt.Printf("faults: %d injected, dead ssds %v, %d replans, %.1f GiB migrated, stall %.2fs\n",
			rep.Injected, rep.DeadSSDs, rep.Replans, rep.MovedBytes/(1<<30), rep.StallSeconds)
		fmt.Printf("degradation: nominal epoch %v, inflation %.2fx\n", rep.NominalEpoch, rep.Inflation)
	}
	if *timeline {
		tl, err := moment.EpochTimeline(r, 6)
		if err != nil {
			fatal(err)
		}
		fmt.Print(tl.Render(96))
	}
}

func pickPlacement(m *moment.Machine, layout string, w moment.Workload) (*moment.Placement, error) {
	switch strings.ToLower(layout) {
	case "a":
		return moment.ClassicPlacement(m, moment.LayoutA)
	case "b":
		return moment.ClassicPlacement(m, moment.LayoutB)
	case "c":
		return moment.ClassicPlacement(m, moment.LayoutC)
	case "d":
		return moment.ClassicPlacement(m, moment.LayoutD)
	case "moment":
		plan, err := moment.Optimize(m, w)
		if err != nil {
			return nil, err
		}
		return plan.Placement, nil
	}
	return nil, fmt.Errorf("unknown layout %q", layout)
}

type clusterFlags struct {
	nodes       int
	flow        bool
	nicGbps     float64
	replication float64
	partition   string
	leaves      int
	leafUplink  float64
	nicOnSocket bool
}

// runCluster simulates the job data-parallel across f.nodes copies of m,
// printing the planned epoch and its network stage.
func runCluster(m *moment.Machine, p *moment.Placement, w moment.Workload, ds moment.Dataset, f clusterFlags) error {
	cfg := moment.ClusterConfig{
		Node:           m,
		Nodes:          f.nodes,
		NICBW:          moment.Gbps(f.nicGbps),
		Workload:       w,
		Placement:      p,
		Flow:           f.flow,
		Replication:    f.replication,
		NICOnGPUSocket: f.nicOnSocket,
	}
	if f.leaves > 0 || f.leafUplink > 0 {
		spec := moment.ClusterSpec{
			Nodes:        f.nodes,
			NICBW:        cfg.NICBW,
			Leaves:       f.leaves,
			LeafUplinkBW: moment.Gbps(f.leafUplink),
		}
		cfg.Cluster = &spec
	}
	if f.partition != "" {
		spec, err := moment.ParsePartitionSpec(f.partition, f.nodes)
		if err != nil {
			return err
		}
		// Score the layout on a deterministic scaled instance of the
		// dataset — the same skewed generator the dataset catalog uses.
		g, err := ds.Scaled(200_000, 1)
		if err != nil {
			return err
		}
		vol, err := moment.ScorePartition(g, spec)
		if err != nil {
			return err
		}
		cfg.Partition = &spec
		cfg.PartitionGraph = g
		fmt.Printf("partition %s: mirror %.0f, reduce %.0f rows/epoch (remote frac %.3f)\n",
			spec, vol.Mirror, vol.Reduce, vol.RemoteFrac())
	}
	r, err := moment.SimulateCluster(cfg)
	if err != nil {
		return err
	}
	if r.OOM != "" {
		fmt.Printf("cluster(%d): OOM (%s)\n", f.nodes, r.OOM)
		return nil
	}
	fmt.Printf("placement %s\n", p)
	fmt.Printf("cluster %d nodes @ %g Gb/s (%s planner): epoch %v\n",
		f.nodes, f.nicGbps, r.Mode, r.EpochTime)
	fmt.Printf("  local io %v, nic stage %v, compute %v, sample %v\n",
		r.LocalIO, r.NICTime, r.ComputeTime, r.SampleTime)
	if r.Mode == "flow" {
		fmt.Printf("  joint flow horizon %v\n", r.FlowTime)
	}
	fmt.Printf("  remote %.1f GiB/node/epoch (%.1f%% of fetches cross the network)\n",
		r.RemoteBytes/(1<<30), r.RemoteFraction*100)
	if plan := r.Replication; plan != nil {
		fmt.Printf("  replication r=%.2f: head %.1f GiB pinned per node, tail %.1f GiB partitioned\n",
			f.replication, plan.HeadBytes/(1<<30), plan.TailBytes/(1<<30))
	}
	fmt.Printf("  throughput %.0f vertices/s cluster-wide\n", r.Throughput)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "momentsim:", err)
	os.Exit(1)
}
