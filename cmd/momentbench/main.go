// Command momentbench regenerates every table and figure of the paper's
// evaluation section and prints them in order (the reproduction harness).
//
// Usage:
//
//	momentbench                   # everything, as aligned tables
//	momentbench fig10 fig16       # selected figures
//	momentbench -json > out.json  # machine-readable
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"moment"
)

func main() {
	asJSON := flag.Bool("json", false, "emit tables as a JSON array")
	flag.Parse()
	tables, err := moment.Experiments()
	if err != nil {
		fmt.Fprintln(os.Stderr, "momentbench:", err)
		os.Exit(1)
	}
	want := map[string]bool{}
	for _, arg := range flag.Args() {
		want[strings.ToLower(arg)] = true
	}
	var selected []*moment.Table
	for _, t := range tables {
		if len(want) > 0 && !want[strings.ToLower(t.ID)] {
			continue
		}
		selected = append(selected, t)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(selected); err != nil {
			fmt.Fprintln(os.Stderr, "momentbench:", err)
			os.Exit(1)
		}
		return
	}
	for _, t := range selected {
		fmt.Println(t)
	}
}
