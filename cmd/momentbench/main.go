// Command momentbench regenerates every table and figure of the paper's
// evaluation section and prints them in order (the reproduction harness).
//
// Usage:
//
//	momentbench                   # everything, as aligned tables
//	momentbench fig10 fig16       # selected figures
//	momentbench -json > out.json  # machine-readable
//	momentbench -bench BENCH.json # per-experiment benchmark records
//	momentbench -compare OLD.json # diff fresh records against a baseline;
//	                              # exit 1 on >10% epoch-time regressions
//	momentbench -serve-load 200   # drive N zipf-skewed synthetic tenants
//	                              # against an in-process momentd, print the
//	                              # load record, and gate on shed rate; with
//	                              # -bench/-compare the record joins the
//	                              # benchmark set as the "serve" layout row
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"moment"
	"moment/cmd/internal/obsflag"
)

func main() {
	asJSON := flag.Bool("json", false, "emit tables as a JSON array")
	benchPath := flag.String("bench", "",
		"write machine-readable per-experiment benchmark records (JSON) to this file")
	comparePath := flag.String("compare", "",
		"diff fresh benchmark records against this baseline BENCH_*.json; exit 1 on regressions")
	threshold := flag.Float64("regress", 0.10,
		"relative epoch-time slowdown treated as a regression by -compare")
	serveTenants := flag.Int("serve-load", 0,
		"run the momentd load harness with this many synthetic tenants (0 = off)")
	serveRequests := flag.Int("serve-requests", 1000, "total requests for -serve-load")
	serveShedMax := flag.Float64("serve-shed-max", 0.05,
		"maximum tolerated -serve-load shed rate before exiting 1")
	sweepNodes := flag.Int("sweep-nodes", 8,
		"fleet size for the placement-sweep bench row with -bench/-compare (0 = skip the row)")
	simEpochs := flag.Int("sim-epochs", 10000,
		"horizon for the long-horizon simulation bench row with -bench/-compare (0 = skip the row)")
	driftEpochs := flag.Int("drift-epochs", 1000,
		"horizon for the traffic-drift adaptive-vs-oracle bench row with -bench/-compare (0 = skip the row)")
	clusterNodes := flag.Int("cluster-nodes", 4,
		"node count for the multi-node flow-vs-DistDGL bench row with -bench/-compare (0 = skip the row)")
	oflags := obsflag.Register()
	flag.Parse()
	oflags.Enable()
	var serveRec *moment.LoadTestRecord
	if *serveTenants > 0 {
		rec, err := moment.RunLoadTest(moment.LoadTestConfig{
			Tenants:  *serveTenants,
			Requests: *serveRequests,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "momentbench: serve-load:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintln(os.Stderr, "momentbench:", err)
			os.Exit(1)
		}
		if err := rec.Check(); err != nil {
			fmt.Fprintln(os.Stderr, "momentbench:", err)
			os.Exit(1)
		}
		if rec.ShedRate > *serveShedMax {
			fmt.Fprintf(os.Stderr, "momentbench: serve-load shed rate %.3f exceeds %.3f\n",
				rec.ShedRate, *serveShedMax)
			os.Exit(1)
		}
		serveRec = rec
	}
	if *benchPath != "" || *comparePath != "" {
		recs, err := moment.BenchRecords()
		if err != nil {
			fmt.Fprintln(os.Stderr, "momentbench:", err)
			os.Exit(1)
		}
		if serveRec != nil {
			recs = append(recs, serveRec.BenchRecord())
		}
		if *sweepNodes > 0 {
			rec, err := moment.FleetSweepRecord(*sweepNodes)
			if err != nil {
				fmt.Fprintln(os.Stderr, "momentbench: fleet sweep:", err)
				os.Exit(1)
			}
			recs = append(recs, rec)
		}
		if *simEpochs > 0 {
			rec, err := moment.LongSimRecord(*simEpochs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "momentbench: longsim:", err)
				os.Exit(1)
			}
			recs = append(recs, rec)
		}
		if *driftEpochs > 0 {
			// The record constructor re-checks the acceptance differential
			// (adaptive within 5% of the oracle on under half its migrated
			// bytes), so a drifted loop fails here, not just at -compare.
			rec, err := moment.DriftBenchRecord(*driftEpochs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "momentbench: drift:", err)
				os.Exit(1)
			}
			recs = append(recs, rec)
		}
		if *clusterNodes > 0 {
			// The record constructor re-checks the multi-node acceptance
			// differential (flow beats DistDGL, flow agrees with analytical
			// on a non-blocking core), so a drifted planner fails here, not
			// just at -compare.
			rec, err := moment.ClusterBenchRecord(*clusterNodes)
			if err != nil {
				fmt.Fprintln(os.Stderr, "momentbench: cluster:", err)
				os.Exit(1)
			}
			recs = append(recs, rec)
		}
		// Observability hot-path row: refuse to even write a record set if
		// the disabled flight-recorder or explain path allocates — that
		// would tax every planner run that never asked for forensics.
		obsRec := moment.ObsBenchRecord()
		if d, e := *obsRec.ObsDisabledEventAllocs, *obsRec.ObsDisabledExplainAllocs; d != 0 || e != 0 {
			fmt.Fprintf(os.Stderr,
				"momentbench: disabled obs hot path allocates (event %d, explain %d allocs/op; want 0)\n", d, e)
			os.Exit(1)
		}
		recs = append(recs, obsRec)
		if *benchPath != "" {
			if err := writeBench(*benchPath, recs); err != nil {
				fmt.Fprintln(os.Stderr, "momentbench:", err)
				os.Exit(1)
			}
		}
		if *comparePath != "" {
			baseline, err := moment.ReadBenchRecords(*comparePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "momentbench:", err)
				os.Exit(1)
			}
			rep := moment.CompareBench(baseline, recs, *threshold)
			fmt.Print(rep)
			if err := rep.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "momentbench:", err)
				os.Exit(1)
			}
		}
		if len(flag.Args()) == 0 {
			if err := oflags.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "momentbench:", err)
				os.Exit(1)
			}
			return
		}
	} else if serveRec != nil && len(flag.Args()) == 0 {
		// A pure -serve-load run is complete once the record is printed.
		if err := oflags.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "momentbench:", err)
			os.Exit(1)
		}
		return
	}
	tables, err := moment.Experiments()
	if err != nil {
		fmt.Fprintln(os.Stderr, "momentbench:", err)
		os.Exit(1)
	}
	want := map[string]bool{}
	for _, arg := range flag.Args() {
		want[strings.ToLower(arg)] = true
	}
	var selected []*moment.Table
	for _, t := range tables {
		if len(want) > 0 && !want[strings.ToLower(t.ID)] {
			continue
		}
		selected = append(selected, t)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(selected); err != nil {
			fmt.Fprintln(os.Stderr, "momentbench:", err)
			os.Exit(1)
		}
		return
	}
	for _, t := range selected {
		fmt.Println(t)
	}
	if err := oflags.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "momentbench:", err)
		os.Exit(1)
	}
}

// writeBench writes benchmark records as an indented JSON array suitable
// for committing as BENCH_*.json.
func writeBench(path string, recs []moment.BenchRecord) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d benchmark records to %s\n", len(recs), path)
	return nil
}
