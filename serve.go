package moment

// Serving-layer re-exports: the planner-as-a-service daemon (momentd), its
// request/response schema, the shared observability exposition handlers,
// and the multi-tenant load-test harness.

import (
	"net/http"

	"moment/internal/server"
	"moment/internal/server/loadtest"
)

type (
	// PlanServer is the multi-tenant planning service: an http.Handler
	// with request coalescing, a cross-tenant plan cache, admission
	// control and live /metrics. Construct with NewPlanServer; drain with
	// its Drain/Close methods before exit.
	PlanServer = server.Server
	// PlanServerConfig tunes worker pool, queue bound, tenant quotas,
	// cache sizes and deadlines (zero value = defaults).
	PlanServerConfig = server.Config
	// PlanRequest / PlanResponse are the JSON schema of POST /v1/plan;
	// WorkloadSpec and SearchSpec are their nested sections.
	PlanRequest  = server.PlanRequest
	PlanResponse = server.PlanResponse
	WorkloadSpec = server.WorkloadSpec
	SearchSpec   = server.SearchSpec
	// PlanServerStats is the /v1/stats document.
	PlanServerStats = server.Stats
	// ExplainResponse is the JSON schema of POST /v1/explain: the plan
	// provenance trail for one request, byte-deterministic for a fixed
	// problem.
	ExplainResponse = server.ExplainResponse

	// LoadTestConfig / LoadTestRecord drive and report the synthetic
	// multi-tenant load harness.
	LoadTestConfig = loadtest.Config
	LoadTestRecord = loadtest.Record
)

// NewPlanServer starts a planning service (workers are live on return).
func NewPlanServer(cfg PlanServerConfig) *PlanServer { return server.New(cfg) }

// RunLoadTest drives a zipf-skewed synthetic tenant mix against a fresh
// in-process PlanServer and reports coalescing/shedding/latency accounting.
func RunLoadTest(cfg LoadTestConfig) (*LoadTestRecord, error) { return loadtest.Run(cfg) }

// MetricsHandler serves an observer's registry as Prometheus text; nil uses
// the process default observer.
func MetricsHandler(o *Observer) http.Handler { return server.MetricsHandler(o) }

// TraceHandler serves an observer's span log as Chrome trace JSON.
func TraceHandler(o *Observer) http.Handler { return server.TraceHandler(o) }

// FlightHandler serves an observer's flight-recorder ring as JSON (the
// empty dump when recording is disabled).
func FlightHandler(o *Observer) http.Handler { return server.FlightHandler(o) }

// PprofHandler serves the runtime profiling endpoints under /debug/pprof/
// on a private mux.
func PprofHandler() http.Handler { return server.PprofHandler() }

// DefaultWatchdogRules is the anomaly rule set a WatchdogDir-configured
// PlanServer runs with (shed storm, queue saturation, epoch-time
// regression, warm-abort storm).
func DefaultWatchdogRules(cfg PlanServerConfig) []WatchdogRule {
	return server.DefaultWatchdogRules(cfg)
}

// ObsMux bundles /metrics, /debug/trace, /debug/flight, /debug/pprof/ and
// /healthz for processes that want exposition without the planning service
// (obsflag -listen uses it, so one-shot CLI runs and momentd share one
// exposition code path).
func ObsMux(o *Observer) *http.ServeMux { return server.ObsMux(o) }
