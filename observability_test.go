package moment_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"moment"
)

// TestOptimizeObservability runs the full automatic module with an observer
// attached and checks the acceptance contract: the trace contains the
// enumerate → prune → maxflow-score → ddak span chain, and the metrics dump
// includes the planner and runtime series the README documents.
func TestOptimizeObservability(t *testing.T) {
	o := moment.NewObserver()
	m := moment.MachineA()
	plan, err := moment.Optimize(m, moment.Workload{
		Dataset: moment.MustDataset("IG"),
		Model:   moment.GraphSAGE,
	}, moment.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Placement == nil {
		t.Fatal("plan lacks a placement")
	}

	var traceBuf bytes.Buffer
	if err := o.WriteTrace(&traceBuf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBuf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
		if ev.Dur < 0 {
			t.Errorf("span %s has negative duration", ev.Name)
		}
		names[ev.Name]++
	}
	for _, want := range []string{
		"co-optimize", "profile", "demand", "placement.search",
		"enumerate", "prune", "maxflow-score", "trainsim.epoch",
		"plan", "predict", "ddak", "fair-shares", "fabric-sim",
		"simnet.run", "simio.run",
	} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
	if names["maxflow-score"] < 2 {
		t.Errorf("expected many maxflow-score spans, got %d", names["maxflow-score"])
	}

	var promBuf bytes.Buffer
	if err := o.WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	prom := promBuf.String()
	for _, want := range []string{
		"placement_candidates_enumerated_total",
		"placement_candidates_pruned_total",
		"placement_candidates_scored_total",
		"maxflow_augmenting_paths_total",
		"maxflow_solves_total",
		"maxflow_bisection_iterations",
		"flownet_solve_seconds",
		"ddak_bin_fill_ratio",
		"ddak_pool_steps_total",
		"trainsim_epoch_seconds",
		"trainsim_stage_seconds",
		"simnet_link_utilization",
		"core_planning_seconds",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}

	var jsonBuf bytes.Buffer
	if err := o.WriteMetricsJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(jsonBuf.Bytes()) {
		t.Error("metrics JSON dump is not valid JSON")
	}
}

// TestOptimizeWithoutObserver confirms the uninstrumented path still works
// and that options compose.
func TestOptimizeWithoutObserver(t *testing.T) {
	plan, err := moment.Optimize(moment.MachineA(), moment.Workload{
		Dataset: moment.MustDataset("IG"),
		Model:   moment.GraphSAGE,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Placement == nil {
		t.Fatal("plan lacks a placement")
	}
}
