package moment

import (
	"fmt"

	"moment/internal/gnn"
	"moment/internal/graph"
	"moment/internal/sample"
	"moment/internal/units"
)

// ModelKind selects GraphSAGE or GAT.
type ModelKind = gnn.ModelKind

// TrainConfig parameterizes a real (functional) training run on a
// scaled-down instance of a catalog dataset: the simulator handles
// paper-scale performance, this path verifies the GNN math end to end.
type TrainConfig struct {
	Dataset  Dataset
	Model    ModelKind
	Vertices int // scaled instance size (e.g. 2000)
	Epochs   int
	Seed     int64

	// Optional overrides (zero values pick sensible small-scale defaults).
	FeatureDim int     // default 32
	Classes    int     // default 4
	Hidden     int     // default 32 (SAGE) / 8 per head (GAT)
	BatchSize  int     // default 64
	TrainFrac  float64 // default 0.3
	Fanouts    []int   // default [8, 4]
	LR         float32 // default 0.01 (Adam)

	// LocalityTiers and LocalityBias install tier-aware neighbor sampling:
	// when a neighborhood is over-fanout, each draw prefers (with
	// probability LocalityBias) the faster-tier of two uniform candidates.
	// LocalityTiers is a per-vertex storage tier (see LayoutTiers); zero
	// bias leaves sampling exactly uniform.
	LocalityTiers []uint8
	LocalityBias  float64
}

// TrainResult reports per-epoch training statistics.
type TrainResult struct {
	Losses     []float64
	Accuracies []float64
	Sampled    int // unique vertices touched over the run
}

// TrainScaled generates a scaled synthetic instance with the dataset's
// access skew, trains the chosen model with real forward/backward passes,
// and returns the loss/accuracy curves.
func TrainScaled(cfg TrainConfig) (*TrainResult, error) {
	if cfg.Vertices <= 0 {
		return nil, fmt.Errorf("moment: TrainScaled needs a positive vertex count")
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("moment: TrainScaled needs a positive epoch count")
	}
	if cfg.FeatureDim == 0 {
		cfg.FeatureDim = 32
	}
	if cfg.Classes == 0 {
		cfg.Classes = 4
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 64
	}
	if cfg.TrainFrac == 0 {
		cfg.TrainFrac = 0.3
	}
	if cfg.Fanouts == nil {
		cfg.Fanouts = []int{8, 4}
	}
	if cfg.LR == 0 {
		cfg.LR = 0.01
	}

	g, err := cfg.Dataset.Scaled(cfg.Vertices, cfg.Seed)
	if err != nil {
		return nil, err
	}
	feats, err := graph.RandomFeatures(g.N(), cfg.FeatureDim, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	labels, err := graph.Labels(feats, cfg.Classes)
	if err != nil {
		return nil, err
	}
	var model gnn.Model
	switch cfg.Model {
	case gnn.KindGAT:
		hidden := cfg.Hidden
		if hidden == 0 {
			hidden = 8
		}
		model, err = gnn.NewGAT(gnn.GATConfig{
			InDim: cfg.FeatureDim, Hidden: hidden, Heads: 2,
			Classes: cfg.Classes, Seed: cfg.Seed + 2,
		})
	case gnn.KindGCN:
		hidden := cfg.Hidden
		if hidden == 0 {
			hidden = 32
		}
		model, err = gnn.NewGCN(gnn.GCNConfig{
			InDim: cfg.FeatureDim, Hidden: hidden,
			Classes: cfg.Classes, Seed: cfg.Seed + 2,
		})
	default:
		hidden := cfg.Hidden
		if hidden == 0 {
			hidden = 32
		}
		model, err = gnn.NewSAGE(gnn.SAGEConfig{
			InDim: cfg.FeatureDim, Hidden: hidden,
			Classes: cfg.Classes, Seed: cfg.Seed + 2,
		})
	}
	if err != nil {
		return nil, err
	}
	smp, err := sample.NewSampler(g, cfg.Fanouts, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	if cfg.LocalityBias > 0 || cfg.LocalityTiers != nil {
		if err := smp.SetLocality(cfg.LocalityTiers, cfg.LocalityBias); err != nil {
			return nil, err
		}
	}
	it, err := sample.NewBatchIterator(g, cfg.TrainFrac, cfg.BatchSize, cfg.Seed+4)
	if err != nil {
		return nil, err
	}
	tr, err := gnn.NewTrainer(model, gnn.NewAdam(cfg.LR), smp, it, feats, labels)
	if err != nil {
		return nil, err
	}
	res := &TrainResult{}
	for e := 0; e < cfg.Epochs; e++ {
		st, err := tr.Epoch()
		if err != nil {
			return nil, err
		}
		res.Losses = append(res.Losses, st.Loss)
		res.Accuracies = append(res.Accuracies, st.Accuracy)
		res.Sampled += st.Sampled
	}
	return res, nil
}

// ProfileHotness runs the §3.3 pre-sampling pass on a scaled instance and
// returns the normalized per-vertex access frequencies DDAK consumes.
func ProfileHotness(d Dataset, vertices int, seed int64) ([]float64, error) {
	g, err := d.Scaled(vertices, seed)
	if err != nil {
		return nil, err
	}
	return sample.ProfileHotness(g, []int{8, 4}, 0.1, 128, 2, seed+1)
}

// TimeToAccuracy couples the two halves of the library: the functional
// path measures how many epochs the model needs to reach a target
// accuracy (on a scaled instance with the dataset's skew), the performance
// path prices each epoch at paper scale on the chosen machine — together
// they estimate wall-clock time-to-accuracy, the metric a practitioner
// sizing a Moment machine actually cares about.
type TimeToAccuracy struct {
	// Epochs is the number of training epochs until the target was hit.
	Epochs int
	// ReachedAccuracy is the accuracy after those epochs.
	ReachedAccuracy float64
	// EpochTime is the simulated per-epoch wall time at paper scale.
	EpochTime units.Duration
	// Total is Epochs × EpochTime.
	Total units.Duration
	// Curve holds the per-epoch accuracies observed.
	Curve []float64
}

// EstimateTimeToAccuracy trains until target accuracy (or maxEpochs) on the
// scaled instance, simulates one paper-scale epoch under sim, and combines
// the two. sim.Workload.Dataset and train.Dataset should match.
func EstimateTimeToAccuracy(sim SimConfig, train TrainConfig, target float64, maxEpochs int) (*TimeToAccuracy, error) {
	if target <= 0 || target > 1 {
		return nil, fmt.Errorf("moment: target accuracy %v out of (0,1]", target)
	}
	if maxEpochs <= 0 {
		return nil, fmt.Errorf("moment: non-positive epoch budget")
	}
	epoch, err := Simulate(sim)
	if err != nil {
		return nil, err
	}
	if epoch.OOM != "" {
		return nil, fmt.Errorf("moment: configuration cannot run: %s", epoch.OOM)
	}
	train.Epochs = maxEpochs
	run, err := TrainScaled(train)
	if err != nil {
		return nil, err
	}
	res := &TimeToAccuracy{EpochTime: epoch.EpochTime, Curve: run.Accuracies}
	for i, acc := range run.Accuracies {
		res.Epochs = i + 1
		res.ReachedAccuracy = acc
		if acc >= target {
			break
		}
	}
	res.Total = units.Seconds(epoch.EpochTime.Sec() * float64(res.Epochs))
	return res, nil
}
