package moment

// The bench harness: one benchmark per paper table/figure (regenerating the
// full experiment each iteration) plus micro-benchmarks for the core
// algorithmic components. Run everything with
//
//	go test -bench=. -benchmem
//
// and a single figure with e.g. -bench=BenchmarkFigure10.

import (
	"math/rand"
	"testing"

	"moment/internal/ddak"
	"moment/internal/experiments"
	"moment/internal/graph"
	"moment/internal/maxflow"
	"moment/internal/placement"
	"moment/internal/sample"
	"moment/internal/scorecache"
	"moment/internal/simnet"
	"moment/internal/tensor"
	"moment/internal/trainsim"
)

func benchTable(b *testing.B, gen func() (*Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1Machines(b *testing.B) {
	benchTable(b, func() (*Table, error) { return experiments.Machines(), nil })
}

func BenchmarkTable2Datasets(b *testing.B) {
	benchTable(b, func() (*Table, error) { return experiments.Datasets(), nil })
}

func BenchmarkFigure01(b *testing.B) { benchTable(b, experiments.Figure1) }
func BenchmarkFigure02(b *testing.B) { benchTable(b, experiments.Figure2) }
func BenchmarkFigure03(b *testing.B) { benchTable(b, experiments.Figure3) }
func BenchmarkFigure04(b *testing.B) { benchTable(b, experiments.Figure4) }
func BenchmarkFigure05(b *testing.B) { benchTable(b, experiments.Figure5) }
func BenchmarkFigure06(b *testing.B) { benchTable(b, experiments.Figure6) }
func BenchmarkFigure07(b *testing.B) { benchTable(b, experiments.Figure7) }
func BenchmarkFigure10(b *testing.B) { benchTable(b, experiments.Figure10) }
func BenchmarkFigure11(b *testing.B) { benchTable(b, experiments.Figure11) }
func BenchmarkFigure12(b *testing.B) { benchTable(b, experiments.Figure12) }
func BenchmarkFigure13(b *testing.B) { benchTable(b, experiments.Figure13) }
func BenchmarkFigure14(b *testing.B) { benchTable(b, experiments.Figure14) }
func BenchmarkFigure15(b *testing.B) { benchTable(b, experiments.Figure15) }
func BenchmarkFigure16(b *testing.B) { benchTable(b, experiments.Figure16) }
func BenchmarkFigure17(b *testing.B) { benchTable(b, experiments.Figure17) }
func BenchmarkFigure18(b *testing.B) { benchTable(b, experiments.Figure18) }

func BenchmarkCostTable(b *testing.B) {
	benchTable(b, func() (*Table, error) { return experiments.CostTable(), nil })
}
func BenchmarkInletBandwidth(b *testing.B)    { benchTable(b, experiments.InletBandwidth) }
func BenchmarkPreprocessingCost(b *testing.B) { benchTable(b, experiments.PreprocessingCost) }

// Ablations called out in DESIGN.md §5.
func BenchmarkAblationSolvers(b *testing.B)  { benchTable(b, experiments.AblationSolvers) }
func BenchmarkAblationSymmetry(b *testing.B) { benchTable(b, experiments.AblationSymmetry) }
func BenchmarkAblationPooling(b *testing.B)  { benchTable(b, experiments.AblationPooling) }

// --- Micro-benchmarks: algorithmic components -------------------------

func randomFlowNetwork(n, m int, seed int64) (*maxflow.Graph, int, int) {
	r := rand.New(rand.NewSource(seed))
	g := maxflow.New(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, float64(1+r.Intn(100)))
		}
	}
	return g, 0, n - 1
}

func benchSolver(b *testing.B, s maxflow.Solver) {
	g, src, sink := randomFlowNetwork(200, 2000, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MaxFlow(src, sink, s)
	}
}

func BenchmarkMaxFlowDinic(b *testing.B)       { benchSolver(b, maxflow.Dinic) }
func BenchmarkMaxFlowEdmondsKarp(b *testing.B) { benchSolver(b, maxflow.EdmondsKarp) }
func BenchmarkMaxFlowPushRelabel(b *testing.B) { benchSolver(b, maxflow.PushRelabel) }

func benchSearch(b *testing.B, opt placement.Options) {
	b.Helper()
	m := MachineB()
	cands, err := placement.Enumerate(m)
	if err != nil {
		b.Fatal(err)
	}
	dem, _, err := trainsim.PlanDemand(trainsim.Config{
		Machine: m, Placement: cands[0],
		Workload: Workload{Dataset: MustDataset("IG"), Model: GraphSAGE},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.Search(m, dem, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlacementSearchMachineB(b *testing.B) { benchSearch(b, placement.Options{}) }

// Serial vs streaming pins the pipeline speedup claimed in EXPERIMENTS.md;
// the cached variant measures a fully warm score cache.
func BenchmarkPlacementSearchSerial(b *testing.B) {
	benchSearch(b, placement.Options{Serial: true})
}

func BenchmarkPlacementSearchStreaming(b *testing.B) {
	benchSearch(b, placement.Options{})
}

// Inline disables the shared probe pool: the scoring workers build and
// bisect in place, the pre-pool reference the pooled path is diffed
// against.
func BenchmarkPlacementSearchInline(b *testing.B) {
	benchSearch(b, placement.Options{NoProbePool: true})
}

func BenchmarkPlacementSearchCached(b *testing.B) {
	cache := scorecache.NewScores(1 << 16)
	benchSearch(b, placement.Options{Cache: cache})
}

func BenchmarkDDAKPlace100k(b *testing.B) {
	hot, err := sample.ZipfHotness(100_000, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	items := make([]ddak.Item, len(hot))
	for i := range items {
		items[i] = ddak.Item{Hot: hot[i], Bytes: 4096}
	}
	bins := []ddak.Bin{
		{Name: "hbm", Tier: ddak.TierGPU, Capacity: 40 << 20, Traffic: 0.4},
		{Name: "dram", Tier: ddak.TierCPU, Capacity: 80 << 20, Traffic: 0.2},
		{Name: "ssd0", Tier: ddak.TierSSD, Capacity: 1 << 30, Traffic: 0.2},
		{Name: "ssd1", Tier: ddak.TierSSD, Capacity: 1 << 30, Traffic: 0.2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ddak.PlaceItems(items, bins, 100, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampling2Hop(b *testing.B) {
	g, err := graph.GenZipf(100_000, 12, 0.9, 3)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sample.NewSampler(g, []int{25, 10}, 1)
	if err != nil {
		b.Fatal(err)
	}
	seeds := make([]int32, 512)
	for i := range seeds {
		seeds[i] = int32(i * 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(seeds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTensorMatMul256(b *testing.B) {
	x := tensor.Rand(512, 512, 1)
	w := tensor.Rand(512, 256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.MatMul(x, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFabricSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := simnet.New()
		var links []simnet.LinkID
		for j := 0; j < 20; j++ {
			l, err := net.AddLink("l", float64(1+j))
			if err != nil {
				b.Fatal(err)
			}
			links = append(links, l)
		}
		r := rand.New(rand.NewSource(7))
		for f := 0; f < 60; f++ {
			path := []simnet.LinkID{links[r.Intn(20)], links[r.Intn(20)]}
			if _, err := net.AddFlow("f", path, float64(100+r.Intn(1000)), 0); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := net.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpochSimulation(b *testing.B) {
	m := MachineA()
	p, err := ClassicPlacement(m, LayoutC)
	if err != nil {
		b.Fatal(err)
	}
	cfg := SimConfig{Machine: m, Placement: p,
		Workload: Workload{Dataset: MustDataset("IG"), Model: GraphSAGE}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoOptimize(b *testing.B) {
	m := MachineB()
	w := Workload{Dataset: MustDataset("IG"), Model: GraphSAGE}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(m, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunctionalTrainingEpoch(b *testing.B) {
	res, err := TrainScaled(TrainConfig{
		Dataset: MustDataset("PA"), Model: GraphSAGE,
		Vertices: 1000, Epochs: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainScaled(TrainConfig{
			Dataset: MustDataset("PA"), Model: GraphSAGE,
			Vertices: 1000, Epochs: 1, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSDMicrobench(b *testing.B) { benchTable(b, experiments.SSDMicrobench) }

func BenchmarkGeneralization(b *testing.B) { benchTable(b, experiments.Generalization) }

func BenchmarkAdaptiveDrift(b *testing.B) { benchTable(b, experiments.AdaptiveDrift) }
