package moment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExplainGolden pins the rendered provenance trail for a fixed problem
// (machine B, PapersArXiv, serial search) byte-for-byte against a committed
// golden file. The trail is the diagnosis surface operators diff across
// deploys — any change to its content or ordering must be deliberate.
// Regenerate with:
//
//	UPDATE_GOLDEN=1 go test -run TestExplainGolden .
func TestExplainGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("real planner run in -short mode")
	}
	render := func() string {
		t.Helper()
		ex := NewExplain()
		_, err := OptimizeWith(MachineB(), Workload{Dataset: MustDataset("PA"), Model: GraphSAGE},
			SearchOptions{Serial: true, Explain: ex})
		if err != nil {
			t.Fatal(err)
		}
		return ex.Render()
	}

	got := render()
	if !strings.Contains(got, "[  sum] result ") {
		t.Fatalf("trail has no result summary:\n%s", got)
	}

	// Determinism first: two fresh runs of the same problem must render
	// identically before a golden comparison means anything.
	if again := render(); again != got {
		t.Fatalf("explain trail not deterministic across runs:\n--- first\n%s\n--- second\n%s", got, again)
	}

	golden := filepath.Join("testdata", "explain_B_PA.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1 go test -run TestExplainGolden .)", err)
	}
	if got != string(want) {
		t.Errorf("explain trail drifted from %s.\nIf the change is deliberate, regenerate with "+
			"UPDATE_GOLDEN=1.\n--- got\n%s\n--- want\n%s", golden, got, want)
	}
}
