package moment

// Cross-package integration and property tests: random (but valid) server
// topologies are pushed through the full pipeline — enumeration, search,
// DDAK, fabric simulation — and the pipeline's global invariants are
// checked on each.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"moment/internal/placement"
	"moment/internal/topology"
	"moment/internal/units"
)

// randomMachine builds a valid random two-socket server with a bounded
// placement-candidate count.
func randomMachine(r *rand.Rand) *Machine {
	m := &Machine{
		Name:          fmt.Sprintf("rand%d", r.Intn(1000)),
		QPIBW:         units.GiBps(14 + float64(r.Intn(12))),
		DRAMPerSocket: units.GB(256),
		DRAMBW:        units.GiBps(30 + float64(r.Intn(10))),
		GPUMemory:     units.GB(40),
		GPUCacheFrac:  0.1 + r.Float64()*0.2,
		SSDCapacity:   units.TB(3.84),
		SSDBW:         units.GiBps(5 + float64(r.Intn(3))),
		SSDIOPS:       900_000,
		PCIeX16:       units.GiBps(16 + float64(r.Intn(8))),
		PCIeX4:        units.GiBps(7),
		NumNodes:      1,
	}
	m.Points = []AttachPoint{
		{ID: "rc0", Kind: topology.RootComplex, Bays: 2 + r.Intn(5), GPUSlots: r.Intn(2)},
		{ID: "rc1", Kind: topology.RootComplex, Bays: 2 + r.Intn(5), GPUSlots: r.Intn(2)},
	}
	// Up to one switch per socket, optionally cascaded on socket 0.
	if r.Intn(2) == 0 {
		m.Points = append(m.Points, AttachPoint{
			ID: "sw0", Kind: topology.Switch, Parent: "rc0",
			UplinkBW: m.PCIeX16, Bays: r.Intn(3), GPUSlots: 2 + r.Intn(2),
		})
		if r.Intn(2) == 0 {
			m.Points = append(m.Points, AttachPoint{
				ID: "sw1", Kind: topology.Switch, Parent: "sw0",
				UplinkBW: m.PCIeX16, Bays: r.Intn(3), GPUSlots: 2,
			})
		}
	}
	if r.Intn(2) == 0 {
		m.Points = append(m.Points, AttachPoint{
			ID: "swb", Kind: topology.Switch, Parent: "rc1",
			UplinkBW: m.PCIeX16, Bays: r.Intn(3), GPUSlots: 2,
		})
	}
	// Device inventory bounded by the slots we created.
	gpuSlots, bays := m.TotalGPUSlots(), m.TotalBays()
	if gpuSlots == 0 {
		m.Points[0].GPUSlots = 1
		gpuSlots = 1
	}
	m.NumGPUs = 1 + r.Intn(min(gpuSlots, 4))
	m.NumSSDs = 2 + r.Intn(bays-1)
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRandomMachinesFullPipeline(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	w := Workload{Dataset: MustDataset("PA"), Model: GraphSAGE}
	machines := 0
	for trial := 0; trial < 20 && machines < 8; trial++ {
		m := randomMachine(r)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: generator built invalid machine: %v", trial, err)
		}
		cands, err := placement.Enumerate(m)
		if err != nil || len(cands) == 0 || len(cands) > 120 {
			continue // keep the sweep cheap
		}
		machines++
		plan, err := Optimize(m, w)
		if err != nil {
			t.Fatalf("trial %d (%s): optimize: %v", trial, m.Name, err)
		}
		if err := plan.Placement.Validate(m); err != nil {
			t.Fatalf("trial %d: invalid chosen placement: %v", trial, err)
		}
		// Invariants on the simulated epoch.
		e := plan.Epoch
		if e.OOM != "" {
			t.Fatalf("trial %d: plan OOM: %s", trial, e.OOM)
		}
		if e.EpochTime <= 0 || e.IOTime <= 0 || e.PredictedIO <= 0 {
			t.Fatalf("trial %d: degenerate times %+v", trial, e)
		}
		if e.FabricEpoch > e.FetchEpoch*1.0001 {
			t.Fatalf("trial %d: fabric bytes %.0f exceed fetched %.0f",
				trial, e.FabricEpoch, e.FetchEpoch)
		}
		if e.HitGPU < 0 || e.HitGPU > 1 || e.HitCPU < 0 || e.HitCPU > 1 {
			t.Fatalf("trial %d: hit rates out of range: %v %v", trial, e.HitGPU, e.HitCPU)
		}
		for g, bw := range e.PerGPUIOBW {
			if bw < 0 || float64(bw) > 2*float64(m.PCIeX16)+float64(m.NVLinkBW) {
				t.Fatalf("trial %d: gpu%d inlet %v implausible", trial, g, bw)
			}
		}
		// The plan's predicted IO must not be worse than a random
		// candidate's (search optimality over the same demand).
		other := cands[r.Intn(len(cands))]
		cfg := SimConfig{Machine: m, Placement: other, Workload: w}
		ro, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("trial %d: simulate candidate: %v", trial, err)
		}
		if ro.OOM == "" && plan.Epoch.PredictedIO.Sec() > ro.PredictedIO.Sec()*1.01 {
			t.Errorf("trial %d: plan predicted %.2fs worse than candidate %.2fs",
				trial, plan.Epoch.PredictedIO.Sec(), ro.PredictedIO.Sec())
		}
	}
	if machines < 4 {
		t.Fatalf("only %d random machines exercised", machines)
	}
}

func TestRandomMachinesDDAKNeverLosesToHash(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	w := Workload{Dataset: MustDataset("IG"), Model: GraphSAGE}
	machines := 0
	for trial := 0; trial < 20 && machines < 6; trial++ {
		m := randomMachine(r)
		cands, err := placement.Enumerate(m)
		if err != nil || len(cands) == 0 {
			continue
		}
		p := cands[r.Intn(len(cands))]
		dd, err := Simulate(SimConfig{Machine: m, Placement: p, Workload: w})
		if err != nil {
			t.Fatal(err)
		}
		hh, err := Simulate(SimConfig{Machine: m, Placement: p, Workload: w, Policy: PolicyHash})
		if err != nil {
			t.Fatal(err)
		}
		if dd.OOM != "" || hh.OOM != "" {
			continue
		}
		machines++
		if dd.EpochTime.Sec() > hh.EpochTime.Sec()*1.02 {
			t.Errorf("trial %d (%s, %s): DDAK %.2fs materially worse than hash %.2fs",
				trial, m.Name, p, dd.EpochTime.Sec(), hh.EpochTime.Sec())
		}
	}
	if machines < 3 {
		t.Fatalf("only %d machines compared", machines)
	}
}

func TestClusterFacade(t *testing.T) {
	node := MachineB()
	p, err := PublishedPlacementB(node)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateCluster(ClusterConfig{
		Node: node, Nodes: 2, NICBW: Gbps(100),
		Workload:  Workload{Dataset: MustDataset("UK"), Model: GraphSAGE},
		Placement: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM != "" || res.Throughput <= 0 {
		t.Fatalf("bad cluster result: %+v", res)
	}
	sweep, err := ClusterSweep(ClusterConfig{
		Node: node, NICBW: Gbps(100),
		Workload:  Workload{Dataset: MustDataset("UK"), Model: GraphSAGE},
		Placement: p,
	}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 || sweep[1].Throughput <= sweep[0].Throughput {
		t.Errorf("sweep did not scale: %v", sweep)
	}
}

func TestAdaptiveFacade(t *testing.T) {
	hot, err := ProfileHotness(MustDataset("IG"), 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]float64, len(hot))
	for i := range bytes {
		bytes[i] = 4096
	}
	bins := []StorageBin{
		{Name: "hbm", Tier: TierGPU, Capacity: 200 * 4096, Traffic: 0.5},
		{Name: "ssd", Tier: TierSSD, Capacity: 1e9, Traffic: 0.5},
	}
	rp, err := NewReplanner(hot, bytes, bins, 100, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	h0, err := LayoutHitRate(rp.Current(), hot)
	if err != nil {
		t.Fatal(err)
	}
	if h0 <= 0 {
		t.Fatal("no fast-tier hits")
	}
	mon, err := NewAccessMonitor(len(hot), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.ObserveBatch([]int32{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if d, err := DriftTV(hot, mon.Hotness()); err != nil || d <= 0 {
		t.Errorf("drift %v, %v", d, err)
	}
}

func TestTrainScaledAllModels(t *testing.T) {
	for _, kind := range []ModelKind{GraphSAGE, GAT, GCN} {
		res, err := TrainScaled(TrainConfig{
			Dataset: MustDataset("PA"), Model: kind,
			Vertices: 600, Epochs: 3, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(res.Losses) != 3 || res.Sampled == 0 {
			t.Fatalf("%v: degenerate result %+v", kind, res)
		}
	}
	if _, err := TrainScaled(TrainConfig{Dataset: MustDataset("PA")}); err == nil {
		t.Error("zero vertices accepted")
	}
	if _, err := TrainScaled(TrainConfig{Dataset: MustDataset("PA"), Vertices: 10}); err == nil {
		t.Error("zero epochs accepted")
	}
}

func TestEstimateTimeToAccuracy(t *testing.T) {
	m := MachineA()
	p, err := ClassicPlacement(m, LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateTimeToAccuracy(
		SimConfig{Machine: m, Placement: p,
			Workload: Workload{Dataset: MustDataset("PA"), Model: GraphSAGE}},
		TrainConfig{Dataset: MustDataset("PA"), Model: GraphSAGE, Vertices: 1200, Seed: 4},
		0.7, 12,
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs <= 0 || res.Epochs > 12 {
		t.Fatalf("epochs %d", res.Epochs)
	}
	if res.ReachedAccuracy < 0.7 && res.Epochs < 12 {
		t.Errorf("stopped at %.3f before budget exhausted", res.ReachedAccuracy)
	}
	wantTotal := res.EpochTime.Sec() * float64(res.Epochs)
	if math.Abs(res.Total.Sec()-wantTotal) > 1e-9 {
		t.Errorf("total %v != epochs x epoch time", res.Total)
	}
	if len(res.Curve) < res.Epochs {
		t.Errorf("curve too short: %d < %d", len(res.Curve), res.Epochs)
	}
	if _, err := EstimateTimeToAccuracy(SimConfig{}, TrainConfig{}, 0, 5); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := EstimateTimeToAccuracy(SimConfig{}, TrainConfig{}, 0.5, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestEpochTimelineFacade(t *testing.T) {
	m := MachineA()
	p, err := ClassicPlacement(m, LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(SimConfig{Machine: m, Placement: p,
		Workload: Workload{Dataset: MustDataset("IG"), Model: GraphSAGE}})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := EpochTimeline(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Critical == "" || tl.Total <= 0 {
		t.Errorf("bad timeline %+v", tl)
	}
}
