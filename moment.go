// Package moment is a reproduction of "Moment: Co-optimizing Physical
// Communication Topology and Data Placement for Multi-GPU Out-of-core GNN
// Training" (SC '25): a co-optimizer that, given a multi-GPU multi-SSD
// server's communication topology and a GNN training workload, selects the
// hardware placement (which PCIe slots hold the GPUs and SSDs) by
// time-bisection max-flow over the augmented communication graph, and lays
// out vertex embeddings across the GPU/CPU/SSD hierarchy with a
// data-distribution-aware knapsack (DDAK).
//
// Because no GPUs or NVMe drives are assumed, the hardware layer is a
// calibrated simulation substrate (see DESIGN.md for the substitution
// table): a flow-level fabric simulator measures epoch I/O, an NVMe
// queue-pair model prices storage access, and analytic cost models price
// GNN compute. The GNN math itself (GraphSAGE, GAT, sampling, training) is
// implemented for real and runs on scaled-down synthetic datasets.
//
// Quick start:
//
//	plan, err := moment.Optimize(moment.MachineB(), moment.Workload{
//		Dataset: moment.MustDataset("IG"),
//		Model:   moment.GraphSAGE,
//	})
//	fmt.Println(plan.Report())
package moment

import (
	"io"

	"moment/internal/baselines"
	"moment/internal/core"
	"moment/internal/experiments"
	"moment/internal/faults"
	"moment/internal/gnn"
	"moment/internal/graph"
	"moment/internal/placement"
	"moment/internal/scorecache"
	"moment/internal/topology"
	"moment/internal/trainsim"
	"moment/internal/verify"
)

// Core topology types.
type (
	// Machine is a server's communication topology and device inventory.
	Machine = topology.Machine
	// Placement assigns GPUs and SSDs to attach points.
	Placement = topology.Placement
	// AttachPoint is a root complex or PCIe switch with slots.
	AttachPoint = topology.AttachPoint
	// NVLinkPair bridges two GPUs.
	NVLinkPair = topology.NVLinkPair
	// ClassicLayout names the four §2.3 hardware layouts.
	ClassicLayout = topology.ClassicLayout
)

// Workload and simulation types.
type (
	// Workload is a dataset + model training job.
	Workload = trainsim.Workload
	// Dataset carries paper-scale dataset statistics (Table 2).
	Dataset = graph.Dataset
	// SimConfig parameterizes an epoch simulation.
	SimConfig = trainsim.Config
	// EpochResult is one simulated training epoch.
	EpochResult = trainsim.Result
	// Plan is the automatic module's output.
	Plan = core.Plan
	// SearchOptions tunes the placement search.
	SearchOptions = placement.Options
	// ScoreCache memoizes candidate scores across placement searches (set
	// it as SearchOptions.Cache; safe to share between searches).
	ScoreCache = scorecache.Scores
	// Table is a regenerated paper figure or table.
	Table = experiments.Table
)

// NewScoreCache returns a bounded LRU score cache holding up to max
// entries (max <= 0 disables caching).
func NewScoreCache(max int) *ScoreCache { return scorecache.NewScores(max) }

// Fault-injection types (set SimConfig.Faults to degrade an epoch).
type (
	// FaultSchedule is a deterministic, seedable list of hardware fault
	// events (SSD fail-stops, throttles, link downtrains, GPU stragglers,
	// transient error bursts).
	FaultSchedule = faults.Schedule
	// FaultEvent is one scheduled fault.
	FaultEvent = faults.Event
	// RetryPolicy governs retry/backoff/timeout handling under faults.
	RetryPolicy = faults.RetryPolicy
	// FaultReport summarizes how a faulted epoch degraded.
	FaultReport = trainsim.FaultReport
)

// ParseFaultSpec decodes the command-line fault grammar, e.g.
// "seed=7;kill:ssd2@30;throttle:ssd1@10x0.5+20".
func ParseFaultSpec(spec string) (*FaultSchedule, error) { return faults.Parse(spec) }

// FormatFaultSpec renders a schedule back into the spec grammar.
func FormatFaultSpec(s *FaultSchedule) string { return faults.Format(s) }

// Model kinds (§4.1).
const (
	// GraphSAGE is the mean-aggregator model (hidden 256).
	GraphSAGE = gnn.KindSAGE
	// GAT is the attention model (hidden 64, 8 heads).
	GAT = gnn.KindGAT
	// GCN is the graph convolutional model (§3.1 input example).
	GCN = gnn.KindGCN
)

// Classic layouts (§2.3, Figures 1-2).
const (
	LayoutA = topology.LayoutA
	LayoutB = topology.LayoutB
	LayoutC = topology.LayoutC
	LayoutD = topology.LayoutD
)

// Data placement policies (§3.3).
const (
	// PolicyDDAK is the data-distribution-aware knapsack.
	PolicyDDAK = trainsim.PolicyDDAK
	// PolicyHash is the uniform hash baseline.
	PolicyHash = trainsim.PolicyHash
)

// GPU cache organizations.
const (
	// CacheReplicated: every GPU caches the same hot vertices (default).
	CacheReplicated = trainsim.CacheReplicated
	// CachePartitioned: caches hold distinct vertices, peers served over
	// the fabric.
	CachePartitioned = trainsim.CachePartitioned
	// CachePaired: NVLink pairs partition their combined capacity (Fig 18).
	CachePaired = trainsim.CachePaired
)

// MachineA returns the balanced-PCIe evaluation server (Table 1).
func MachineA() *Machine { return topology.MachineA() }

// MachineB returns the cascaded-PCIe evaluation server (Table 1).
func MachineB() *Machine { return topology.MachineB() }

// MachineC returns one node of the DistDGL cluster (Table 1).
func MachineC() *Machine { return topology.MachineC() }

// ParseMachine reads a machine spec (the offline stand-in for
// lspci/dmidecode extraction; see topology.FormatSpec for the format).
func ParseMachine(r io.Reader) (*Machine, error) { return topology.ParseSpec(r) }

// FormatMachine serializes a machine to the spec format.
func FormatMachine(m *Machine) string { return topology.FormatSpec(m) }

// Datasets returns the Table 2 catalog (PA, IG, UK, CL).
func Datasets() []Dataset { return graph.Catalog() }

// DatasetByName looks up a catalog dataset.
func DatasetByName(name string) (Dataset, error) { return graph.DatasetByName(name) }

// MustDataset looks up a catalog dataset, panicking on unknown names.
func MustDataset(name string) Dataset {
	d, err := graph.DatasetByName(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Optimize runs the automatic module (§3.1 Fig 8): profile → placement
// search with symmetry reduction → max-flow scoring → DDAK data placement
// → simulated epoch under the chosen plan. Options (WithObserver,
// WithSearchOptions, WithSimConfig) customize the run.
func Optimize(m *Machine, w Workload, opts ...Option) (*Plan, error) {
	in := core.Input{Machine: m, Workload: w}
	for _, o := range opts {
		o(&in)
	}
	return core.CoOptimize(in)
}

// OptimizeWith exposes the search knobs.
func OptimizeWith(m *Machine, w Workload, opts SearchOptions) (*Plan, error) {
	return core.CoOptimize(core.Input{Machine: m, Workload: w, Search: opts})
}

// Simulate runs one training epoch under an explicit configuration.
func Simulate(cfg SimConfig) (*EpochResult, error) { return trainsim.SimulateEpoch(cfg) }

// ClassicPlacement builds one of the four §2.3 layouts for machines A/B.
func ClassicPlacement(m *Machine, l ClassicLayout) (*Placement, error) {
	return topology.ClassicPlacement(m, l)
}

// PublishedPlacementB is the Fig 7 layout for machine B.
func PublishedPlacementB(m *Machine) (*Placement, error) {
	return topology.MomentPlacementB(m)
}

// Baseline entry points (§4.1).
var (
	// MGIDS simulates the multi-GPU GIDS baseline.
	MGIDS = baselines.MGIDS
	// MHyperion simulates the multi-GPU Hyperion baseline.
	MHyperion = baselines.MHyperion
	// DistDGL simulates the distributed baseline on cluster C.
	DistDGL = baselines.DistDGL
)

// DefaultDistDGL returns the calibrated cluster configuration.
func DefaultDistDGL() baselines.DistDGLConfig { return baselines.DefaultDistDGL() }

// Experiments regenerates every paper table and figure in order.
func Experiments() ([]*Table, error) { return experiments.All() }

// BenchRecord is one machine-readable benchmark data point.
type BenchRecord = experiments.BenchRecord

// BenchRecords simulates the core benchmark grid (machines A/B × classic
// layouts + the Moment-searched placement) and returns one JSON-ready
// record per configuration.
func BenchRecords() ([]BenchRecord, error) { return experiments.BenchRecords() }

// FleetSweepRecord benchmarks the fleet placement-sweep harness: nodes
// planned cold and serially (baseline) versus through one shared score
// cache with the pooled streaming search, as the "sweep" bench row.
func FleetSweepRecord(nodes int) (BenchRecord, error) {
	return experiments.FleetSweepRecord(nodes)
}

// LongSimRecord benchmarks the long-horizon simulation harness: a
// fault-injected multi-epoch run re-simulated in full every epoch
// (baseline) versus the fault-signature delta cache, as the "longsim"
// bench row.
func LongSimRecord(epochs int) (BenchRecord, error) {
	return experiments.LongSimRecord(epochs)
}

// DriftBenchRecord benchmarks the closed adaptive loop over a long
// drifting horizon against the from-scratch replanning oracle, as the
// "drift" bench row. It errors if the acceptance differential fails:
// adaptive mean epoch within 5% of the oracle's on under half its
// migrated bytes.
func DriftBenchRecord(epochs int) (BenchRecord, error) {
	return experiments.DriftRecord(epochs)
}

// ObsBenchRecord measures the observability hot paths (flight-recorder
// Record, explain Add) with testing.AllocsPerRun and reports them as the
// "obs" bench row. The disabled paths must measure exactly zero
// allocations per call.
func ObsBenchRecord() BenchRecord { return experiments.ObsRecord() }

// CompareReport is a per-experiment diff of two benchmark record sets.
type CompareReport = experiments.CompareReport

// CompareBench diffs fresh benchmark records against a committed baseline
// on epoch time. threshold is the relative slowdown treated as a
// regression (<=0 defaults to 10%); CompareReport.Err is the CI gate.
func CompareBench(baseline, newRecs []BenchRecord, threshold float64) *CompareReport {
	return experiments.CompareBench(baseline, newRecs, threshold)
}

// ReadBenchRecords loads a committed BENCH_*.json record set.
func ReadBenchRecords(path string) ([]BenchRecord, error) {
	return experiments.ReadBenchRecords(path)
}

// EnableSelfChecks turns on planner self-verification: every flow solve,
// placement search, and DDAK layout audits its own output (max-flow
// certificates, capacity and accounting invariants) and fails loudly
// instead of returning a silently wrong plan. Costs roughly one extra
// solve per audited call.
func EnableSelfChecks() { verify.Enable() }

// DisableSelfChecks removes the self-verification hooks.
func DisableSelfChecks() { verify.Disable() }

// SelfChecksEnabled reports whether planner self-verification is on.
func SelfChecksEnabled() bool { return verify.Enabled() }
