// Quickstart: run Moment's automatic module on the cascaded-PCIe Machine B
// for GraphSAGE on IGB-HOM, print the chosen hardware placement and data
// layout, and compare the resulting epoch time against the best common
// hand-crafted layout.
package main

import (
	"fmt"
	"log"

	"moment"
)

func main() {
	machine := moment.MachineB()
	workload := moment.Workload{
		Dataset: moment.MustDataset("IG"),
		Model:   moment.GraphSAGE,
	}

	plan, err := moment.Optimize(machine, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Report())

	// How much does the co-optimized placement buy over the usual
	// "spread everything evenly" layout (c)?
	classic, err := moment.ClassicPlacement(machine, moment.LayoutC)
	if err != nil {
		log.Fatal(err)
	}
	base, err := moment.Simulate(moment.SimConfig{
		Machine: machine, Placement: classic, Workload: workload,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclassic layout (c): epoch %v\n", base.EpochTime)
	fmt.Printf("moment speedup:     %.2fx\n",
		base.EpochTime.Sec()/plan.Epoch.EpochTime.Sec())
}
