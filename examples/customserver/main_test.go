package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: the served plan must come
// back with a real placement, the coalescing line, and the cache-hit line.
func TestRun(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`planned machine "custom"`,
		"coalesced onto one planner run",
		"selected placement: gpus at",
		"top placements by predicted IO:",
		"cached_plan=true",
		"metric: momentd_planner_runs_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- output ---\n%s", want, out)
		}
	}
}
