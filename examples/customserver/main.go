// Custom server: the scenario Moment is built for (§2.3 "server vendors
// offering customized machines"). Describe a bespoke chassis in the spec
// format — an NVLink-equipped machine with an extra deep switch cascade —
// and plan it through the momentd serving stack: an in-process PlanServer
// receives the spec over POST /v1/plan, coalesces identical concurrent
// requests into one planner run, caches the finished plan across tenants,
// and exposes what it did on /metrics.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"

	"moment"
)

const spec = `
# A build-to-order server: two sockets, one of them with a two-deep
# PCIe-switch cascade, 3 GPUs and 6 SSDs to place, NVLink bridge between
# GPU 0 and 1.
machine custom
qpi 20GiB/s
dram 256GiB 36GiB/s
gpus 3 mem=40GiB cachefrac=0.15
ssds 6 cap=3.84TiB bw=6GiB/s iops=930000
pcie x16=20GiB/s x4=7GiB/s
nodes 1 nic=0GiB/s
point rc0 root bays=4 gpuslots=1
point rc1 root bays=4 gpuslots=1
point sw0 switch parent=rc0 uplink=20GiB/s bays=2 gpuslots=2
point sw1 switch parent=sw0 uplink=20GiB/s bays=2 gpuslots=2
nvlink 0 1 bw=50GiB/s
`

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// The planning service, in-process. In production this is `momentd`
	// listening on a port; the handler is the same either way.
	srv := moment.NewPlanServer(moment.PlanServerConfig{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, err := json.Marshal(moment.PlanRequest{
		MachineSpec: spec,
		Workload:    moment.WorkloadSpec{Dataset: "UK"},
		Search:      moment.SearchSpec{TopK: 3},
	})
	if err != nil {
		return err
	}

	// Three vendor configurators ask about the same chassis at once:
	// identical problems coalesce into a single planner run.
	const clients = 3
	responses := make([]*moment.PlanResponse, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = postPlan(ts, fmt.Sprintf("vendor-%d", i), body)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	first := responses[0]
	coalesced := 0
	for _, r := range responses {
		if r.Coalesced {
			coalesced++
		}
	}
	fmt.Fprintf(w, "planned machine %q: %d candidates, %d evaluated after symmetry reduction\n",
		first.Machine, first.Enumerated, first.Evaluated)
	fmt.Fprintf(w, "%d concurrent clients -> %d coalesced onto one planner run\n", clients, coalesced)
	fmt.Fprintf(w, "selected placement: gpus at %s, ssds at %s\n",
		strings.Join(first.Placement.GPUAt, ","), strings.Join(first.Placement.SSDAt, ","))
	fmt.Fprintf(w, "predicted epoch IO %.2fs, simulated epoch %.2fs\n",
		first.PredictedIOSec, first.Epoch.EpochSec)
	fmt.Fprintf(w, "top placements by predicted IO:\n")
	for i, r := range first.Ranked {
		fmt.Fprintf(w, "  #%d  %.3fs  gpus %s\n", i+1, r.PredictedIOSec, strings.Join(r.GPUAt, ","))
	}

	// A late request for the same chassis is a sub-millisecond cache hit,
	// returned as an isolated copy the caller may mutate freely.
	late, err := postPlan(ts, "vendor-late", body)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "late request: cached_plan=%v plan_ms=%.0f\n", late.CachedPlan, late.PlanMS)

	// The daemon meters itself: scrape the serving counters.
	metrics, err := scrape(ts, "/metrics")
	if err != nil {
		return err
	}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "momentd_planner_runs_total") ||
			strings.HasPrefix(line, "momentd_coalesced_total") ||
			strings.HasPrefix(line, "momentd_plan_cache_hits_total") {
			fmt.Fprintln(w, "metric:", line)
		}
	}
	return nil
}

func postPlan(ts *httptest.Server, tenant string, body []byte) (*moment.PlanResponse, error) {
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Moment-Tenant", tenant)
	resp, err := ts.Client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("plan: status %d: %s", resp.StatusCode, raw)
	}
	var pr moment.PlanResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		return nil, err
	}
	return &pr, nil
}

func scrape(ts *httptest.Server, path string) (string, error) {
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	return string(raw), nil
}
