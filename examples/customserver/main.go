// Custom server: the scenario Moment is built for (§2.3 "server vendors
// offering customized machines"). Describe a bespoke chassis in the spec
// format — an NVLink-equipped machine with an extra deep switch cascade —
// then let the automatic module pick where to plug the GPUs and SSDs
// before the machine is even assembled.
package main

import (
	"fmt"
	"log"
	"strings"

	"moment"
)

const spec = `
# A build-to-order server: two sockets, one of them with a two-deep
# PCIe-switch cascade, 3 GPUs and 6 SSDs to place, NVLink bridge between
# GPU 0 and 1.
machine custom
qpi 20GiB/s
dram 256GiB 36GiB/s
gpus 3 mem=40GiB cachefrac=0.15
ssds 6 cap=3.84TiB bw=6GiB/s iops=930000
pcie x16=20GiB/s x4=7GiB/s
nodes 1 nic=0GiB/s
point rc0 root bays=4 gpuslots=1
point rc1 root bays=4 gpuslots=1
point sw0 switch parent=rc0 uplink=20GiB/s bays=2 gpuslots=2
point sw1 switch parent=sw0 uplink=20GiB/s bays=2 gpuslots=2
nvlink 0 1 bw=50GiB/s
`

func main() {
	machine, err := moment.ParseMachine(strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed machine %q: %d GPUs, %d SSDs, %d attach points\n",
		machine.Name, machine.NumGPUs, machine.NumSSDs, len(machine.Points))

	workload := moment.Workload{Dataset: moment.MustDataset("UK"), Model: moment.GraphSAGE}
	plan, err := moment.OptimizeWith(machine, workload, moment.SearchOptions{KeepScores: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Report())

	// With the hardware placed, does pairing the NVLinked GPUs' caches
	// help this workload (the Fig 18 question)?
	paired, err := moment.Simulate(moment.SimConfig{
		Machine: machine, Placement: plan.Placement, Workload: workload,
		Cache: moment.CachePaired,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplicated caches: epoch %v\n", plan.Epoch.EpochTime)
	fmt.Printf("paired via NVLink: epoch %v (%.1f%% throughput change)\n",
		paired.EpochTime, (paired.Throughput/plan.Epoch.Throughput-1)*100)
}
