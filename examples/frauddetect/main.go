// Fraud detection: train a GAT over a skewed transaction graph (§1 cites
// financial fraud detection as a core GNN application). The example trains
// the attention model for real on a scaled ClueWeb-skew instance, profiles
// vertex hotness with the §3.3 pre-sampling pass, and then shows why
// hotness-aware placement matters at scale by comparing DDAK against hash
// placement on the full ClueWeb dataset — the terabyte-scale setting where
// only Moment survives.
package main

import (
	"fmt"
	"log"
	"sort"

	"moment"
)

func main() {
	dataset := moment.MustDataset("CL")

	fmt.Println("== functional check: training GAT on a scaled transaction graph ==")
	res, err := moment.TrainScaled(moment.TrainConfig{
		Dataset:  dataset,
		Model:    moment.GAT,
		Vertices: 1500,
		Epochs:   6,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  loss %.4f -> %.4f over %d epochs (%d vertices sampled)\n",
		res.Losses[0], res.Losses[len(res.Losses)-1], len(res.Losses), res.Sampled)

	fmt.Println("\n== pre-sampling hotness profile (drives DDAK) ==")
	hot, err := moment.ProfileHotness(dataset, 20000, 11)
	if err != nil {
		log.Fatal(err)
	}
	sorted := append([]float64(nil), hot...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	top := 0.0
	for _, h := range sorted[:len(sorted)/100] {
		top += h
	}
	fmt.Printf("  hottest 1%% of vertices draw %.1f%% of accesses\n", top*100)

	fmt.Println("\n== at scale: DDAK vs hash placement, ClueWeb on Machine B ==")
	machine := moment.MachineB()
	placement, err := moment.PublishedPlacementB(machine)
	if err != nil {
		log.Fatal(err)
	}
	workload := moment.Workload{Dataset: dataset, Model: moment.GAT}
	for _, policy := range []struct {
		name string
		p    moment.SimConfig
	}{
		{"ddak", moment.SimConfig{Machine: machine, Placement: placement, Workload: workload}},
		{"hash", moment.SimConfig{Machine: machine, Placement: placement, Workload: workload,
			Policy: moment.PolicyHash}},
	} {
		r, err := moment.Simulate(policy.p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: epoch %v, %.0f vertices/s (gpu hits %.1f%%)\n",
			policy.name, r.EpochTime, r.Throughput, r.HitGPU*100)
	}
}
