// Recommender: the paper's motivating workload — an e-commerce
// recommendation model over a billion-scale user-item graph (§1 cites
// Taobao's >1B-vertex graph). This example (1) actually trains GraphSAGE
// on a scaled-down instance with the same access skew, verifying the
// functional path, and then (2) sizes the job up to the full IGB-HOM
// dataset on Machine A, comparing Moment against the M-GIDS and DistDGL
// deployments a practitioner would otherwise choose.
package main

import (
	"fmt"
	"log"

	"moment"
)

func main() {
	dataset := moment.MustDataset("IG")

	fmt.Println("== functional check: training GraphSAGE on a scaled instance ==")
	res, err := moment.TrainScaled(moment.TrainConfig{
		Dataset:  dataset,
		Model:    moment.GraphSAGE,
		Vertices: 2000,
		Epochs:   5,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	for e, loss := range res.Losses {
		fmt.Printf("  epoch %d: loss %.4f, accuracy %.3f\n", e, loss, res.Accuracies[e])
	}
	if last, first := res.Losses[len(res.Losses)-1], res.Losses[0]; last < first {
		fmt.Printf("  loss decreased %.4f -> %.4f: model is learning\n", first, last)
	}

	fmt.Println("\n== scaling up: full IGB-HOM on Machine A ==")
	machine := moment.MachineA()
	workload := moment.Workload{Dataset: dataset, Model: moment.GraphSAGE}
	plan, err := moment.Optimize(machine, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("moment:  epoch %v, %.0f vertices/s (placement %s)\n",
		plan.Epoch.EpochTime, plan.Epoch.Throughput, plan.Placement)

	classic, err := moment.ClassicPlacement(machine, moment.LayoutC)
	if err != nil {
		log.Fatal(err)
	}
	gids, err := moment.MGIDS(machine, classic, workload)
	if err != nil {
		log.Fatal(err)
	}
	if gids.OOM != "" {
		fmt.Printf("m-gids:  OOM (%s)\n", gids.OOM)
	} else {
		fmt.Printf("m-gids:  epoch %v, %.0f vertices/s\n", gids.EpochTime, gids.Throughput)
	}
	dgl, err := moment.DistDGL(moment.MachineC(), moment.DefaultDistDGL(), workload)
	if err != nil {
		log.Fatal(err)
	}
	if dgl.OOM != "" {
		fmt.Printf("distdgl: OOM (%s) — the 4-node cluster cannot even hold the dataset\n", dgl.OOM)
	} else {
		fmt.Printf("distdgl: epoch %v, %.0f vertices/s\n", dgl.EpochTime, dgl.Throughput)
	}
}
