// Multinode: the §5 "Generalization to Multi-node" extension. A single
// Moment machine already trains ClueWeb, but a growing organization may
// still scale out; this example sweeps a cluster of Moment machines from
// 1 to 8 nodes, showing (1) sublinear but positive scaling with hot-data
// replication, (2) how a slow interconnect flips the job network-bound,
// and (3) how much traffic the §5 locality rule ("prioritize local
// SSD/memory access") keeps off the wire.
package main

import (
	"fmt"
	"log"

	"moment"
)

func main() {
	node := moment.MachineB()
	placement, err := moment.PublishedPlacementB(node)
	if err != nil {
		log.Fatal(err)
	}
	base := moment.ClusterConfig{
		Node:      node,
		NICBW:     moment.Gbps(100),
		Workload:  moment.Workload{Dataset: moment.MustDataset("CL"), Model: moment.GraphSAGE},
		Placement: placement,
	}

	fmt.Println("== scaling Moment machines with 100 Gbps interconnect ==")
	results, err := moment.ClusterSweep(base, []int{1, 2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range []int{1, 2, 4, 8} {
		r := results[i]
		fmt.Printf("  %d node(s): epoch %v (local io %v, nic %v), %.0f vertices/s, %.0f%% remote\n",
			n, r.EpochTime, r.LocalIO, r.NICTime, r.Throughput, r.RemoteFraction*100)
	}

	fmt.Println("\n== same 4-node cluster on a 10 Gbps network ==")
	slow := base
	slow.Nodes = 4
	slow.NICBW = moment.Gbps(10)
	rSlow, err := moment.SimulateCluster(slow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  epoch %v — network stage %v now dominates local io %v\n",
		rSlow.EpochTime, rSlow.NICTime, rSlow.LocalIO)

	fmt.Println("\n== value of the locality rule (hot-data replication) ==")
	off := false
	naive := base
	naive.Nodes = 4
	naive.ReplicateHot = &off
	rNaive, err := moment.SimulateCluster(naive)
	if err != nil {
		log.Fatal(err)
	}
	local := base
	local.Nodes = 4
	rLocal, err := moment.SimulateCluster(local)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  naive partitioning: %.0f%% of fetches cross the network, epoch %v\n",
		rNaive.RemoteFraction*100, rNaive.EpochTime)
	fmt.Printf("  hot replication:    %.0f%% cross the network, epoch %v (%.2fx)\n",
		rLocal.RemoteFraction*100, rLocal.EpochTime,
		rNaive.EpochTime.Sec()/rLocal.EpochTime.Sec())
}
